//! The supervisor: a bounded worker pool behind a bounded admission queue,
//! with load shedding past the high-water mark and a graceful, deadline-bound
//! drain.
//!
//! The accept loop never blocks on a client: a connection either enters the
//! admission queue, or — past the high-water mark — is shed on the spot with
//! a typed [`Overloaded`](crate::ServerError::Overloaded) reply carrying a
//! retry-after hint. Workers pop connections and run them to completion; the
//! per-request deadline wheel and the idle I/O timeout bound how long any one
//! connection can hold a worker.
//!
//! Shutdown ([`ServiceHandle::shutdown`]) flips one flag: the accept loop
//! stops, open/resume requests are refused with `ShuttingDown`, queued and
//! in-flight connections drain up to `drain_deadline`, then stragglers are
//! hung up. Jobs those stragglers held are parked resumable — their streams
//! already persist every acknowledged chunk, so a drain loses no accepted
//! work.

use crate::conn;
use crate::deadline::{DeadlineWheel, DEFAULT_TICK};
use crate::error::ServerError;
use crate::obs;
use crate::proto;
use crate::session::{SchemeProvider, Sessions, StoreProvider};
use crate::transport::{Hangup, Transport};
use f2_io::{FrameSink, RetryPolicy};
use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs for one service instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections (≥ 1).
    pub workers: usize,
    /// Admission-queue high-water mark: connections beyond it are shed.
    pub queue_depth: usize,
    /// Per-request deadline; an expired request hangs the connection up and
    /// replies [`DeadlineExpired`](ServerError::DeadlineExpired).
    pub request_deadline: Duration,
    /// Granularity of the deadline wheel (deadlines fire at most one tick
    /// late).
    pub deadline_tick: Duration,
    /// Idle/half-open reaping: a connection silent this long is dropped.
    pub idle_timeout: Duration,
    /// How long a drain waits for in-flight connections before hanging them
    /// up (their jobs park resumable).
    pub drain_deadline: Duration,
    /// The backoff hint shed connections receive.
    pub retry_after: Duration,
    /// Rows per chunk for every job this service runs.
    pub chunk_rows: usize,
    /// Per-connection frame memory cap (bytes); larger frames are refused
    /// before allocation.
    pub frame_cap: usize,
    /// Service seed; each job's engine seed derives deterministically from it
    /// and the job token, so resumes re-derive identical key schedules.
    pub seed: u64,
    /// Retry policy wrapped around every connection's socket I/O.
    pub retry: RetryPolicy,
    /// Requests slower than this emit a structured `server.slow_request`
    /// trace event with their per-stage breakdown.
    pub slow_request_threshold: Duration,
    /// Distinct tenants that get their own label on the per-tenant metric
    /// families; tenants past the cap aggregate under `tenant="_other"`.
    pub tenant_label_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            request_deadline: Duration::from_secs(10),
            deadline_tick: DEFAULT_TICK,
            idle_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            retry_after: Duration::from_millis(200),
            chunk_rows: 512,
            frame_cap: 1 << 24,
            seed: 0xF2F2_5EED,
            retry: RetryPolicy::new(4),
            slow_request_threshold: Duration::from_secs(1),
            tenant_label_cap: 32,
        }
    }
}

/// Everything the connection and session layers share.
pub(crate) struct Core {
    pub(crate) config: ServerConfig,
    pub(crate) schemes: Arc<dyn SchemeProvider>,
    pub(crate) stores: Arc<dyn StoreProvider>,
    pub(crate) sessions: Sessions,
    pub(crate) wheel: DeadlineWheel,
    pub(crate) conns: ConnRegistry,
    /// Mints request/trace ids for requests that arrive without a wire trace
    /// context. Seeded from the service seed, so replayed workloads trace
    /// deterministically.
    pub(crate) ids: f2_obs::IdSource,
    queue: Queue,
    shutdown: AtomicBool,
}

impl Core {
    /// Whether shutdown has been requested (admissions refused from then on).
    pub(crate) fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Connections currently waiting in the admission queue.
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Hangup handles of every connection currently being served, so drain can
/// cut stragglers loose.
pub(crate) struct ConnRegistry {
    inner: Mutex<HashMap<u64, Arc<dyn Hangup>>>,
    next: AtomicU64,
}

impl ConnRegistry {
    fn new() -> Self {
        ConnRegistry { inner: Mutex::new(HashMap::new()), next: AtomicU64::new(1) }
    }

    pub(crate) fn register(&self, hangup: Arc<dyn Hangup>) -> u64 {
        let id = self.next.fetch_add(1, Ordering::SeqCst);
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).insert(id, hangup);
        id
    }

    pub(crate) fn unregister(&self, id: u64) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
    }

    fn active(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    fn hangup_all(&self) {
        let handles: Vec<Arc<dyn Hangup>> = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(Arc::clone)
            .collect();
        for handle in handles {
            handle.hangup();
        }
    }
}

/// Outcome of an admission attempt.
enum Push {
    Admitted,
    Full(Box<dyn Transport>),
    Closed(Box<dyn Transport>),
}

/// The bounded admission queue between the accept loop and the worker pool.
struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    items: VecDeque<Box<dyn Transport>>,
    closed: bool,
}

impl Queue {
    fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, transport: Box<dyn Transport>, depth: usize) -> Push {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return Push::Closed(transport);
        }
        if state.items.len() >= depth.max(1) {
            return Push::Full(transport);
        }
        state.items.push_back(transport);
        obs::queue_depth().set(depth_i64(state.items.len()));
        drop(state);
        self.ready.notify_one();
        Push::Admitted
    }

    /// Blocks for the next connection; `None` once closed *and* empty, so
    /// workers drain everything already admitted before exiting.
    fn pop(&self) -> Option<Box<dyn Transport>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                obs::queue_depth().set(depth_i64(state.items.len()));
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).closed = true;
        self.ready.notify_all();
    }

    fn is_empty(&self) -> bool {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).items.is_empty()
    }

    fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }
}

fn depth_i64(len: usize) -> i64 {
    i64::try_from(len).unwrap_or(i64::MAX)
}

/// A source of inbound connections the service runs over.
pub trait Acceptor: Send {
    /// The next connection, if one is ready. `Ok(None)` means "poll again"
    /// (the service checks its shutdown flag between polls); an error ends
    /// the accept loop and starts a drain.
    fn accept(&mut self) -> std::io::Result<Option<Box<dyn Transport>>>;
}

/// TCP acceptor: non-blocking accepts with a short poll sleep, so shutdown
/// is noticed promptly.
pub struct TcpAcceptor {
    listener: TcpListener,
    poll: Duration,
}

impl TcpAcceptor {
    /// Bind a listener on `addr`.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpAcceptor { listener, poll: Duration::from_millis(5) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self) -> std::io::Result<Option<Box<dyn Transport>>> {
        match self.listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(self.poll);
                Ok(None)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// In-process acceptor fed through a channel — how tests and chaos suites
/// dial the service with [`duplex`](crate::pipe::duplex) pipe ends (optionally
/// wrapped in fault injectors).
pub struct ChannelAcceptor {
    rx: mpsc::Receiver<Box<dyn Transport>>,
}

/// A `(dialer, acceptor)` pair: transports sent on the dialer are served by
/// a service running the acceptor. Dropping every dialer ends the accept
/// loop with an error (which still drains gracefully).
#[must_use]
pub fn channel_acceptor() -> (mpsc::Sender<Box<dyn Transport>>, ChannelAcceptor) {
    let (tx, rx) = mpsc::channel();
    (tx, ChannelAcceptor { rx })
}

impl Acceptor for ChannelAcceptor {
    fn accept(&mut self) -> std::io::Result<Option<Box<dyn Transport>>> {
        match self.rx.recv_timeout(Duration::from_millis(10)) {
            Ok(transport) => Ok(Some(transport)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "every dialer dropped"))
            }
        }
    }
}

/// The supervised encryption service. Construct, grab a [`ServiceHandle`]
/// for shutdown, then [`run`](Service::run) it over an [`Acceptor`].
pub struct Service {
    core: Arc<Core>,
}

/// A clonable handle that can request a graceful drain from any thread.
#[derive(Clone)]
pub struct ServiceHandle {
    core: Arc<Core>,
}

impl ServiceHandle {
    /// Request shutdown: admissions stop, in-flight work drains up to the
    /// configured deadline, incomplete jobs stay resumable.
    pub fn shutdown(&self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Service {
    /// A service over the given tenants and job stores.
    #[must_use]
    pub fn new(
        config: ServerConfig,
        schemes: Arc<dyn SchemeProvider>,
        stores: Arc<dyn StoreProvider>,
    ) -> Self {
        let sessions = Sessions::new(config.seed, config.chunk_rows.max(1), 1);
        let wheel = DeadlineWheel::with_tick(config.deadline_tick);
        let ids = f2_obs::IdSource::seeded(config.seed ^ 0x7261_6365_5F69_6473);
        Service {
            core: Arc::new(Core {
                config,
                schemes,
                stores,
                sessions,
                wheel,
                conns: ConnRegistry::new(),
                ids,
                queue: Queue::new(),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Shared state for an HTTP scrape listener
    /// ([`HttpServer`](crate::http::HttpServer)) attached to this service:
    /// the global metrics registry, the global trace journal, and a health
    /// source that reports `draining` once shutdown starts and `overloaded`
    /// while the admission queue is at its high-water mark.
    #[must_use]
    pub fn http_state(&self) -> crate::http::HttpState {
        crate::http::HttpState::new(
            f2_obs::global().clone(),
            Arc::clone(f2_obs::journal()),
            Arc::new(CoreHealth { core: Arc::clone(&self.core) }),
        )
    }

    /// A shutdown handle for this service.
    #[must_use]
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle { core: Arc::clone(&self.core) }
    }

    /// Serve connections until shutdown is requested (or the acceptor fails),
    /// then drain and return. One `run` per service instance: the shutdown
    /// flag is sticky.
    pub fn run<A: Acceptor>(&self, mut acceptor: A) -> std::io::Result<()> {
        let core = &*self.core;
        std::thread::scope(|scope| {
            for index in 0..core.config.workers.max(1) {
                let spawned = std::thread::Builder::new()
                    .name(format!("f2-server-worker-{index}"))
                    .spawn_scoped(scope, move || {
                        while let Some(transport) = core.queue.pop() {
                            conn::serve(core, transport);
                        }
                    });
                if let Err(e) = spawned {
                    // Release any workers already parked on the queue before
                    // bailing, or the scope would never join.
                    core.queue.close();
                    return Err(e);
                }
            }
            let accept_result = loop {
                if core.is_draining() {
                    break Ok(());
                }
                match acceptor.accept() {
                    Ok(Some(transport)) => admit(core, transport),
                    Ok(None) => {}
                    Err(e) => break Err(e),
                }
            };
            core.shutdown.store(true, Ordering::SeqCst);
            core.queue.close();
            drain(core);
            accept_result
        })
    }
}

/// [`crate::http::HealthSource`] over the service core: draining beats
/// overloaded beats ok.
struct CoreHealth {
    core: Arc<Core>,
}

impl crate::http::HealthSource for CoreHealth {
    fn health(&self) -> crate::http::Health {
        if self.core.is_draining() {
            crate::http::Health::Draining
        } else if self.core.queue_len() >= self.core.config.queue_depth.max(1) {
            crate::http::Health::Overloaded
        } else {
            crate::http::Health::Ok
        }
    }
}

/// Admit a connection, or shed it with a typed reply.
fn admit(core: &Core, transport: Box<dyn Transport>) {
    match core.queue.push(transport, core.config.queue_depth) {
        Push::Admitted => {}
        Push::Full(t) => {
            obs::shed_total().inc();
            reject(core, t, &ServerError::Overloaded { retry_after: core.config.retry_after });
        }
        Push::Closed(t) => reject(core, t, &ServerError::ShuttingDown),
    }
}

/// Best-effort typed rejection, written inline on the accept thread with a
/// short timeout so a slow client cannot stall admissions.
fn reject(core: &Core, mut transport: Box<dyn Transport>, error: &ServerError) {
    obs::connections_total().inc();
    let timeout = core.config.idle_timeout.min(Duration::from_millis(250));
    let _ = transport.set_io_timeout(Some(timeout));
    let (ty, payload) = proto::encode_error(error);
    if let Ok(mut sink) = FrameSink::new(transport) {
        let _ = sink.write_frame(ty, &payload);
        let _ = sink.finish();
    }
}

/// Wait for queued + in-flight connections to finish; past the deadline,
/// hang stragglers up (their jobs park resumable) until everything is gone.
fn drain(core: &Core) {
    let deadline = Instant::now() + core.config.drain_deadline;
    loop {
        if core.queue.is_empty() && core.conns.active() == 0 {
            return;
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    while !(core.queue.is_empty() && core.conns.active() == 0) {
        core.conns.hangup_all();
        std::thread::sleep(Duration::from_millis(5));
    }
}
