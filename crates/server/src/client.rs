//! A blocking client for the service protocol.
//!
//! [`Client`] wraps any `Read + Write` transport (a [`TcpStream`], a
//! [`duplex`](crate::pipe::duplex) pipe end, a fault-injected wrapper) in the
//! same framed, CRC-checked, retry-wrapped layers the server uses, and
//! exposes one method per request. Typed server errors come back as the
//! exact [`ServerError`](crate::ServerError) variant the server sent —
//! `Overloaded` carries its retry-after hint, `WrongChunk` the index to
//! re-send from — so callers branch on variants, not on message strings.
//!
//! [`TcpStream`]: std::net::TcpStream

use crate::error::{ServerError, ServerResult};
use crate::proto::{Request, Response};
use crate::transport::Shared;
use f2_io::frame::{FrameReader, FrameSink};
use f2_io::{RetryPolicy, RetryingReader, RetryingWriter, RowSource, TableSource};
use f2_obs::{IdSource, MetricsSnapshot, TraceCtx};
use f2_relation::{Schema, Table};
use std::io::{Read, Write};

/// Reply to a successful `open`: the job's resume credential and geometry.
#[derive(Debug, Clone, Copy)]
pub struct JobOpened {
    /// The job token — keep it; it is the resume credential.
    pub token: u64,
    /// Rows every append must carry (the final one may be shorter).
    pub chunk_rows: u64,
}

/// Reply to a successful `append`.
#[derive(Debug, Clone, Copy)]
pub struct AppendAck {
    /// Plaintext rows the job holds after this append.
    pub rows: u64,
    /// Encrypted rows written so far.
    pub encrypted_rows: u64,
    /// Index the next append must carry.
    pub next_chunk: u64,
}

/// Reply to a successful `finish`.
#[derive(Debug, Clone, Copy)]
pub struct FinishAck {
    /// Total plaintext rows encrypted.
    pub rows: u64,
    /// Total encrypted rows written (padding included).
    pub encrypted_rows: u64,
    /// Chunks in the finished stream.
    pub chunks: u64,
    /// Stream bytes, preamble and frame headers included.
    pub bytes_written: u64,
}

/// Reply to a successful `resume`: where to pick back up.
#[derive(Debug, Clone, Copy)]
pub struct ResumeAck {
    /// The job token (echoed).
    pub token: u64,
    /// Index the next append must carry.
    pub next_chunk: u64,
    /// Rows already durably encrypted — re-send from this row onward.
    pub rows_done: u64,
    /// Rows every append must carry.
    pub chunk_rows: u64,
}

/// Request-tracing state on a tracing-enabled [`Client`].
struct ClientTrace {
    /// Mints one fresh request id per request.
    ids: IdSource,
    /// The conversation's trace id, shared by every request this client sends.
    trace_id: u64,
    /// The context attached to the most recent request.
    last_sent: Option<TraceCtx>,
    /// The context the server echoed on the most recent successful reply.
    last_echo: Option<TraceCtx>,
}

/// A blocking protocol client over any byte transport.
pub struct Client<T: Read + Write> {
    sink: FrameSink<RetryingWriter<Shared<T>>>,
    frames: FrameReader<RetryingReader<Shared<T>>>,
    trace: Option<ClientTrace>,
}

impl<T: Read + Write> Client<T> {
    /// Connect over `transport` with the default retry policy.
    pub fn connect(transport: T) -> ServerResult<Self> {
        Self::connect_with(transport, &RetryPolicy::new(4))
    }

    /// Connect with an explicit retry policy for the transport I/O.
    pub fn connect_with(transport: T, retry: &RetryPolicy) -> ServerResult<Self> {
        let shared = Shared::new(transport);
        let reader_shared = shared.clone();
        match FrameSink::new(retry.writer(shared)) {
            Ok(sink) => {
                let frames = FrameReader::new(retry.reader(reader_shared))?;
                Ok(Client { sink, frames, trace: None })
            }
            // A shedding or draining server rejects inline: it writes its
            // typed reply and hangs up, possibly before our preamble goes
            // out. The reply is still buffered — surface it instead of the
            // raw broken-pipe error.
            Err(write_err) => {
                let salvaged = FrameReader::new(retry.reader(reader_shared))
                    .and_then(|mut frames| frames.next_frame());
                match salvaged {
                    Ok(Some(frame)) => match Response::decode(frame.frame_type, &frame.payload) {
                        Err(typed) => Err(typed),
                        Ok(_) => Err(write_err.into()),
                    },
                    _ => Err(write_err.into()),
                }
            }
        }
    }

    /// Turn on request tracing: every request from here on carries a wire
    /// trace context (one trace id for the whole conversation, a fresh
    /// request id per request), and the server's echo is kept for
    /// [`last_server_trace`](Client::last_server_trace).
    ///
    /// Requires a trace-aware server — an older server rejects the unknown
    /// trailing field as a `BadRequest`, which is why tracing is opt-in.
    #[must_use]
    pub fn with_tracing(mut self, ids: IdSource) -> Self {
        let trace_id = ids.next_id();
        self.trace = Some(ClientTrace { ids, trace_id, last_sent: None, last_echo: None });
        self
    }

    /// The trace context attached to the most recent request, when tracing
    /// is on.
    #[must_use]
    pub fn last_trace(&self) -> Option<TraceCtx> {
        self.trace.as_ref().and_then(|t| t.last_sent)
    }

    /// The trace context the server echoed on the most recent successful
    /// reply — confirmation of which trace the server filed the work under.
    #[must_use]
    pub fn last_server_trace(&self) -> Option<TraceCtx> {
        self.trace.as_ref().and_then(|t| t.last_echo)
    }

    /// Open a new encryption job for `tenant`.
    pub fn open(&mut self, tenant: &str, schema: &Schema) -> ServerResult<JobOpened> {
        match self.request(&Request::Open { tenant: tenant.to_string(), schema: schema.clone() })? {
            Response::Open { token, chunk_rows } => Ok(JobOpened { token, chunk_rows }),
            other => Err(unexpected("open", &other)),
        }
    }

    /// Append one chunk of rows to the job.
    pub fn append(
        &mut self,
        token: u64,
        chunk_index: u64,
        table: Table,
    ) -> ServerResult<AppendAck> {
        match self.request(&Request::Append { token, chunk_index, table })? {
            Response::Append { rows, encrypted_rows, next_chunk } => {
                Ok(AppendAck { rows, encrypted_rows, next_chunk })
            }
            other => Err(unexpected("append", &other)),
        }
    }

    /// Finish the job's stream and retire the token.
    pub fn finish(&mut self, token: u64) -> ServerResult<FinishAck> {
        match self.request(&Request::Finish { token })? {
            Response::Finish { rows, encrypted_rows, chunks, bytes_written } => {
                Ok(FinishAck { rows, encrypted_rows, chunks, bytes_written })
            }
            other => Err(unexpected("finish", &other)),
        }
    }

    /// Reattach to a persisted job (after a disconnect, a server fault, or a
    /// full server restart).
    pub fn resume(&mut self, tenant: &str, token: u64, schema: &Schema) -> ServerResult<ResumeAck> {
        match self.request(&Request::Resume {
            tenant: tenant.to_string(),
            token,
            schema: schema.clone(),
        })? {
            Response::Resume { token, next_chunk, rows_done, chunk_rows } => {
                Ok(ResumeAck { token, next_chunk, rows_done, chunk_rows })
            }
            other => Err(unexpected("resume", &other)),
        }
    }

    /// Fetch the service's metrics as a typed, queryable snapshot.
    pub fn metrics(&mut self) -> ServerResult<MetricsSnapshot> {
        Ok(MetricsSnapshot::parse(&self.metrics_text()?))
    }

    /// Fetch the service's raw Prometheus text exposition.
    pub fn metrics_text(&mut self) -> ServerResult<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Convenience: encrypt a whole table through one job — open, append in
    /// server-sized chunks, finish.
    pub fn encrypt_table(&mut self, tenant: &str, table: &Table) -> ServerResult<FinishAck> {
        let opened = self.open(tenant, table.schema())?;
        let chunk_rows = usize::try_from(opened.chunk_rows.max(1)).unwrap_or(usize::MAX);
        let mut source = TableSource::new(table);
        let mut chunk_index = 0_u64;
        while let Some(chunk) = source.next_chunk(chunk_rows)? {
            self.append(opened.token, chunk_index, chunk.view().to_table())?;
            chunk_index = chunk_index.saturating_add(1);
        }
        self.finish(opened.token)
    }

    /// End the conversation cleanly: the server sees an orderly close, not a
    /// disconnect.
    pub fn close(self) -> ServerResult<()> {
        let Client { sink, frames, trace: _ } = self;
        drop(frames);
        sink.finish()?;
        Ok(())
    }

    fn request(&mut self, request: &Request) -> ServerResult<Response> {
        let ctx = self.trace.as_mut().map(|trace| {
            let ctx = TraceCtx::new(trace.trace_id, trace.ids.next_id());
            trace.last_sent = Some(ctx);
            trace.last_echo = None;
            ctx
        });
        let (ty, payload) = request.encode_traced(ctx.as_ref());
        // A shedding or draining server replies and hangs up without reading
        // our request, so the write may fail while a typed reply already sits
        // buffered in the transport. Always attempt the read; surface the
        // write error only when no reply arrived.
        let wrote = self.sink.write_frame(ty, &payload);
        match self.frames.next_frame() {
            Ok(Some(frame)) => {
                let (response, echo) = Response::decode_traced(frame.frame_type, &frame.payload)?;
                if let Some(trace) = self.trace.as_mut() {
                    trace.last_echo = echo;
                }
                Ok(response)
            }
            Ok(None) => Err(match wrote {
                Ok(()) => ServerError::Disconnected,
                Err(err) => err.into(),
            }),
            Err(read_err) => Err(match wrote {
                Ok(()) => read_err.into(),
                Err(err) => err.into(),
            }),
        }
    }
}

fn unexpected(what: &str, got: &Response) -> ServerError {
    ServerError::BadRequest(format!("unexpected reply to {what}: {got:?}"))
}
