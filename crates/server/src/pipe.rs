//! An in-memory duplex byte pipe implementing [`Transport`], so the whole
//! service — admission, deadlines, shedding, drain — can be exercised in
//! tests without binding sockets, and chaos suites can interpose
//! [`f2_io::fault`] wrappers on exact byte offsets deterministically.
//!
//! [`duplex`] returns two ends; bytes written into one are read from the
//! other. Each direction is an unbounded buffer guarded by a mutex +
//! condvar. Hanging up (from either side's [`Hangup`] handle, or by dropping
//! an end) wakes all waiters: readers drain what is already buffered and then
//! see EOF, writers fail with [`std::io::ErrorKind::BrokenPipe`] — the same
//! shape a killed TCP socket presents.

use crate::transport::{Hangup, Transport};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// One direction of the pipe: a byte queue plus the hangup flag.
struct Channel {
    state: Mutex<ChannelState>,
    readable: Condvar,
}

struct ChannelState {
    buf: VecDeque<u8>,
    hungup: bool,
}

impl Channel {
    fn new() -> Arc<Self> {
        Arc::new(Channel {
            state: Mutex::new(ChannelState { buf: VecDeque::new(), hungup: false }),
            readable: Condvar::new(),
        })
    }

    fn hangup(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).hungup = true;
        self.readable.notify_all();
    }
}

/// One end of an in-memory duplex transport. See the module docs.
pub struct PipeEnd {
    read_from: Arc<Channel>,
    write_to: Arc<Channel>,
    read_timeout: Option<Duration>,
}

/// A matched pair of pipe ends: bytes written to one are read from the other.
#[must_use]
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a_to_b = Channel::new();
    let b_to_a = Channel::new();
    (
        PipeEnd {
            read_from: Arc::clone(&b_to_a),
            write_to: Arc::clone(&a_to_b),
            read_timeout: None,
        },
        PipeEnd { read_from: a_to_b, write_to: b_to_a, read_timeout: None },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.read_from.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                for slot in buf.iter_mut().take(n) {
                    // The length check above guarantees `n` buffered bytes.
                    *slot = state.buf.pop_front().unwrap_or_default();
                }
                return Ok(n);
            }
            if state.hungup {
                return Ok(0);
            }
            state = match self.read_timeout {
                Some(timeout) => {
                    let (guard, wait) = self
                        .read_from
                        .readable
                        .wait_timeout(state, timeout)
                        .unwrap_or_else(PoisonError::into_inner);
                    if wait.timed_out() && guard.buf.is_empty() && !guard.hungup {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "pipe read timed out",
                        ));
                    }
                    guard
                }
                None => self.read_from.readable.wait(state).unwrap_or_else(PoisonError::into_inner),
            };
        }
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut state = self.write_to.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.hungup {
            return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe peer hung up"));
        }
        state.buf.extend(buf.iter().copied());
        drop(state);
        self.write_to.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct PipeHangup {
    a: Arc<Channel>,
    b: Arc<Channel>,
}

impl Hangup for PipeHangup {
    fn hangup(&self) {
        self.a.hangup();
        self.b.hangup();
    }
}

impl Transport for PipeEnd {
    fn hangup_handle(&self) -> Box<dyn Hangup> {
        Box::new(PipeHangup { a: Arc::clone(&self.read_from), b: Arc::clone(&self.write_to) })
    }

    fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.read_timeout = timeout;
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        // Dropping an end hangs up both directions, like closing a socket:
        // the peer's reads drain then EOF, its writes fail.
        self.read_from.hangup();
        self.write_to.hangup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn bytes_cross_the_pipe_in_order() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello").expect("write");
        let mut out = [0_u8; 5];
        b.read_exact(&mut out).expect("read");
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn dropping_one_end_gives_the_peer_buffered_bytes_then_eof() {
        let (mut a, mut b) = duplex();
        a.write_all(b"tail").expect("write");
        drop(a);
        let mut out = Vec::new();
        b.read_to_end(&mut out).expect("drain");
        assert_eq!(out, b"tail");
        assert_eq!(
            b.write(b"x").expect_err("write after hangup").kind(),
            std::io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn a_read_timeout_surfaces_as_timed_out() {
        let (mut a, _b) = duplex();
        a.set_io_timeout(Some(Duration::from_millis(10))).expect("timeout");
        let mut buf = [0_u8; 1];
        assert_eq!(a.read(&mut buf).expect_err("empty pipe").kind(), std::io::ErrorKind::TimedOut);
    }

    #[test]
    fn the_hangup_handle_wakes_a_blocked_reader() {
        let (mut a, b) = duplex();
        let hangup = a.hangup_handle();
        let reader = std::thread::spawn(move || {
            let mut buf = [0_u8; 1];
            a.read(&mut buf)
        });
        std::thread::sleep(Duration::from_millis(20));
        hangup.hangup();
        let got = reader.join().expect("reader thread");
        assert_eq!(got.expect("EOF after hangup"), 0);
        drop(b);
    }
}
