//! Byte transports a connection runs over: TCP sockets in production, the
//! in-memory [`duplex`](crate::pipe::duplex) pipe in tests and chaos drills.
//!
//! The service needs exactly three things from a transport: blocking
//! [`Read`]/[`Write`], a bounded I/O timeout (the idle-reaping backstop), and
//! a [`Hangup`] handle another thread can use to kill the connection — the
//! teeth behind request deadlines and the drain deadline. Both directions of
//! a connection go through one [`Shared`] handle, so the frame reader and
//! frame sink can each own a clone while the underlying socket stays single.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A handle that can interrupt a blocked transport from another thread.
/// Hanging up is idempotent and infallible (best effort).
pub trait Hangup: Send + Sync {
    /// Kill the transport: blocked and future reads/writes fail promptly.
    fn hangup(&self);
}

/// A connection's byte stream, as the service consumes it.
pub trait Transport: Read + Write + Send {
    /// A handle that can kill this transport from another thread.
    fn hangup_handle(&self) -> Box<dyn Hangup>;

    /// Bound every blocking read/write by `timeout` (`None` = block forever).
    /// Timed-out operations fail with [`std::io::ErrorKind::WouldBlock`] or
    /// [`std::io::ErrorKind::TimedOut`] — both transient under
    /// [`f2_io::RetryPolicy`], so a bounded number of retries separates a
    /// hiccup from a dead peer.
    fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()>;
}

struct TcpHangup(TcpStream);

impl Hangup for TcpHangup {
    fn hangup(&self) {
        let _ = self.0.shutdown(Shutdown::Both);
    }
}

/// A hangup handle for transports that could not produce one (e.g. a failed
/// `try_clone`): hanging up does nothing, the idle timeout still reaps.
struct NoopHangup;

impl Hangup for NoopHangup {
    fn hangup(&self) {}
}

impl Transport for TcpStream {
    fn hangup_handle(&self) -> Box<dyn Hangup> {
        match self.try_clone() {
            Ok(clone) => Box::new(TcpHangup(clone)),
            Err(_) => Box::new(NoopHangup),
        }
    }

    fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)?;
        self.set_write_timeout(timeout)
    }
}

/// Clonable [`Read`] + [`Write`] over one transport, so a
/// [`FrameReader`](f2_io::FrameReader) and a [`FrameSink`](f2_io::FrameSink)
/// can share it. Request/reply traffic is strictly sequential per connection,
/// so the mutex is uncontended; a poisoned lock (a panicked holder) degrades
/// to using the transport anyway — the connection is being torn down.
pub(crate) struct Shared<T: ?Sized>(Arc<Mutex<T>>);

impl<T> Shared<T> {
    pub(crate) fn new(transport: T) -> Self {
        Shared(Arc::new(Mutex::new(transport)))
    }
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T: Read + ?Sized> Read for Shared<T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).read(buf)
    }
}

impl<T: Write + ?Sized> Write for Shared<T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).flush()
    }
}
