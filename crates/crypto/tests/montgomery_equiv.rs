//! Equivalence suite pinning the Montgomery/REDC fast path to the generic
//! (division-based) implementations, plus frozen byte vectors guarding the wire
//! format of `BigUint` serialization across limb-width changes.
//!
//! The `u32 → u64` limb switch and the Montgomery engine must be *unobservable*
//! except for speed: `mod_pow` ≡ `mod_pow_generic`, Montgomery `mul` ≡ `mul_mod`,
//! CRT decryption ≡ textbook decryption, and `to_bytes_be`/`from_bytes_be` must
//! emit exactly the bytes the committed wire golden vectors (and every persisted
//! Paillier frame) were built from. Operand widths deliberately straddle the limb
//! boundary (63/64/65 bits) where carry bugs live.

use f2_crypto::{BigUint, Montgomery, PaillierKeyPair};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random odd integer of exactly `bits` bits.
fn random_odd(bits: usize, rng: &mut impl Rng) -> BigUint {
    let mut n = BigUint::random_bits(bits, rng);
    if n.is_even() {
        n = n.add(&BigUint::one());
    }
    n
}

/// Widths that straddle u64-limb boundaries, plus realistic Paillier sizes.
const BOUNDARY_BITS: [usize; 9] = [8, 63, 64, 65, 127, 128, 129, 192, 256];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mont_mul_matches_mul_mod(width in 0usize..BOUNDARY_BITS.len(), seed in 0u64..u64::MAX) {
        let bits = BOUNDARY_BITS[width];
        let mut rng = StdRng::seed_from_u64(seed);
        let n = random_odd(bits, &mut rng);
        let ctx = Montgomery::new(&n).expect("odd modulus");
        let a = BigUint::random_bits(bits, &mut rng).rem(&n);
        let b = BigUint::random_bits(bits, &mut rng).rem(&n);
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        prop_assert_eq!(ctx.from_mont(&ctx.mont_mul(&am, &bm)), a.mul_mod(&b, &n));
        // Mixed-domain shortcut used by Paillier encryption: plain × Montgomery
        // operand yields the plain modular product directly.
        prop_assert_eq!(ctx.mont_mul(&a, &bm), a.mul_mod(&b, &n));
    }

    #[test]
    fn mod_pow_matches_generic_on_odd_moduli(
        width in 0usize..BOUNDARY_BITS.len(),
        exp_bits in 1usize..96,
        seed in 0u64..u64::MAX,
    ) {
        let bits = BOUNDARY_BITS[width];
        let mut rng = StdRng::seed_from_u64(seed);
        let n = random_odd(bits, &mut rng);
        let base = BigUint::random_bits(bits, &mut rng);
        let exp = BigUint::random_bits(exp_bits, &mut rng);
        prop_assert_eq!(base.mod_pow(&exp, &n), base.mod_pow_generic(&exp, &n));
    }

    #[test]
    fn mod_pow_dispatches_on_even_moduli(
        width in 0usize..BOUNDARY_BITS.len(),
        exp_bits in 1usize..64,
        seed in 0u64..u64::MAX,
    ) {
        // REDC needs an odd modulus; `mod_pow` must transparently fall back to the
        // generic path for even ones instead of panicking or mis-computing.
        let bits = BOUNDARY_BITS[width];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = BigUint::random_bits(bits, &mut rng);
        if !n.is_even() {
            n = n.add(&BigUint::one());
        }
        let base = BigUint::random_bits(bits, &mut rng);
        let exp = BigUint::random_bits(exp_bits, &mut rng);
        prop_assert_eq!(base.mod_pow(&exp, &n), base.mod_pow_generic(&exp, &n));
    }

    #[test]
    fn binary_gcd_matches_euclid(a_bits in 1usize..200, b_bits in 1usize..200, seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BigUint::random_bits(a_bits, &mut rng);
        let b = BigUint::random_bits(b_bits, &mut rng);
        // Euclid oracle, the formulation the binary GCD replaced.
        let euclid = {
            let (mut x, mut y) = (a.clone(), b.clone());
            while !y.is_zero() {
                let r = x.rem(&y);
                x = y;
                y = r;
            }
            x
        };
        prop_assert_eq!(a.gcd(&b), euclid);
    }

    #[test]
    fn byte_roundtrip_at_boundary_widths(width in 0usize..BOUNDARY_BITS.len(), seed in 0u64..u64::MAX) {
        let bits = BOUNDARY_BITS[width];
        let mut rng = StdRng::seed_from_u64(seed);
        let x = BigUint::random_bits(bits, &mut rng);
        let bytes = x.to_bytes_be();
        // Canonical: no leading zero byte, exact bit width preserved.
        prop_assert_eq!(bytes.len(), bits.div_ceil(8));
        prop_assert!(bytes.first() != Some(&0));
        prop_assert_eq!(BigUint::from_bytes_be(&bytes), x);
    }
}

proptest! {
    // Key generation per case makes these the slowest properties; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn crt_decrypt_matches_generic_decrypt(key_seed in 0u64..u64::MAX, msg_seed in 0u64..u64::MAX) {
        let mut key_rng = StdRng::seed_from_u64(key_seed);
        let kp = PaillierKeyPair::generate(128, &mut key_rng).expect("keygen");
        let mut rng = StdRng::seed_from_u64(msg_seed);
        for _ in 0..4 {
            let m = BigUint::random_below(kp.public().modulus(), &mut rng);
            let c = kp.public().encrypt(&m, &mut rng).expect("encrypt");
            let crt = kp.decrypt(&c).expect("CRT decrypt");
            let generic = kp.decrypt_generic(&c).expect("generic decrypt");
            prop_assert_eq!(&crt, &generic);
            prop_assert_eq!(&crt, &m);
        }
    }

    #[test]
    fn pooled_ciphertexts_decrypt_on_both_paths(key_seed in 0u64..u64::MAX, msg in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(key_seed);
        let kp = PaillierKeyPair::generate(128, &mut rng).expect("keygen");
        let mut pool = f2_crypto::RandomnessPool::new(kp.public(), 4, &mut rng);
        let m = BigUint::from_u64(msg).rem(kp.public().modulus());
        let c = kp.public().encrypt_with_pool(&m, &mut pool).expect("encrypt");
        prop_assert_eq!(kp.decrypt(&c).expect("CRT"), m.clone());
        prop_assert_eq!(kp.decrypt_generic(&c).expect("generic"), m);
    }
}

/// Frozen serialization vectors: `(big-endian hex of the value, constructor)`.
///
/// These bytes were produced by the u32-limb implementation this PR replaced and
/// must never change — Paillier ciphertext frames persisted through the engine's
/// `F2WS` wire format (see `crates/engine/tests/wire_compat.rs`) embed exactly this
/// encoding, so a limb-layout change that altered it would corrupt stored tables.
#[test]
fn frozen_byte_vectors_stay_wire_compatible() {
    // Small values: minimal big-endian, no leading zeros.
    assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    assert_eq!(BigUint::one().to_bytes_be(), vec![0x01]);
    assert_eq!(BigUint::from_u64(0xabcd).to_bytes_be(), vec![0xab, 0xcd]);
    // A value straddling the old u32 limb boundary.
    assert_eq!(
        BigUint::from_u64(0x0102_0304_0506_0708).to_bytes_be(),
        vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08]
    );
    // A value straddling the new u64 limb boundary (65 bits).
    assert_eq!(
        BigUint::from_u128(0x1_ffee_ddcc_bbaa_9988).to_bytes_be(),
        vec![0x01, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88]
    );
    // 2^192: one marker byte then 24 zeros.
    let mut expected = vec![0x01];
    expected.extend(std::iter::repeat_n(0u8, 24));
    assert_eq!(BigUint::one().shl(192).to_bytes_be(), expected);
    // Parsing tolerates redundant leading zeros but re-serializes canonically.
    assert_eq!(BigUint::from_bytes_be(&[0, 0, 0x05]).to_bytes_be(), vec![0x05]);
    // A 33-byte (non-multiple-of-8) vector round-trips bit-exactly.
    let long: Vec<u8> = (1..=33u8).collect();
    assert_eq!(BigUint::from_bytes_be(&long).to_bytes_be(), long);
}

/// The Paillier chunk framing (marker byte + payload) on top of the serialization:
/// the exact integers the scheme encrypts are unchanged by the limb switch.
#[test]
fn frozen_chunk_message_vector() {
    let message = {
        let mut m = vec![0x01];
        m.extend_from_slice(b"Hoboken");
        BigUint::from_bytes_be(&m)
    };
    // 0x01 ‖ "Hoboken" as a big-endian integer = 0x01486f626f6b656e.
    assert_eq!(message, BigUint::from_u128(0x01_48_6f_62_6f_6b_65_6e));
    assert_eq!(message.to_bytes_be(), b"\x01Hoboken".to_vec());
}
