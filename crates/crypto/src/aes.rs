//! AES-128 block cipher (FIPS-197), implemented from first principles.
//!
//! The S-box and its inverse are *derived* (multiplicative inverse in GF(2⁸) followed
//! by the affine transform) rather than hard-coded, and the whole cipher is validated
//! against the FIPS-197 appendix test vectors, so a table typo cannot silently corrupt
//! the scheme.

/// Number of 32-bit words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
const NR: usize = 10;

/// Multiply two elements of GF(2⁸) with the AES reduction polynomial x⁸+x⁴+x³+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), by exponentiation to the 254th power.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^(2+4+8+16+32+64+128)
    let mut result = 1u8;
    let mut power = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, power);
        }
        power = gf_mul(power, power);
        exp >>= 1;
    }
    result
}

/// Generate the AES S-box: affine transform of the field inverse.
fn generate_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    for (i, slot) in sbox.iter_mut().enumerate() {
        let inv = gf_inv(i as u8);
        let mut x = inv;
        let mut res = inv;
        for _ in 0..4 {
            x = x.rotate_left(1);
            res ^= x;
        }
        *slot = res ^ 0x63;
    }
    sbox
}

fn invert_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in sbox.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// An expanded AES-128 key, ready to encrypt or decrypt 16-byte blocks.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Aes128 {{ .. }}")
    }
}

impl Aes128 {
    /// Expand a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let sbox = generate_sbox();
        let inv_sbox = invert_sbox(&sbox);
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for i in 0..NK {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys, sbox, inv_sbox }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// State layout: column-major, state[r + 4c].
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] =
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
            state[4 * c + 1] =
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
            state[4 * c + 2] =
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
            state[4 * c + 3] =
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..NR {
            self.sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        self.sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[NR]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            Self::inv_shift_rows(block);
            self.inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        self.inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypt a copy of the block and return it.
    pub fn encrypt_block_copy(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_matches_known_entries() {
        let sbox = generate_sbox();
        // Spot-check well-known S-box entries from FIPS-197 Figure 7.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        let inv = invert_sbox(&sbox);
        for i in 0..=255u8 {
            assert_eq!(inv[sbox[i as usize] as usize], i);
        }
    }

    #[test]
    fn gf_arithmetic() {
        // Examples from FIPS-197 §4.2.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_blocks() {
        let aes = Aes128::new(&[7u8; 16]);
        for i in 0..64u8 {
            let mut block = [i; 16];
            block[0] = i.wrapping_mul(17);
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig, "ciphertext must differ from plaintext");
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new(&[1u8; 16]);
        let b = Aes128::new(&[2u8; 16]);
        let block = [0u8; 16];
        assert_ne!(a.encrypt_block_copy(&block), b.encrypt_block_copy(&block));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(&[9u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains('9'));
    }
}
