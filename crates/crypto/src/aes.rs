//! AES-128 block cipher (FIPS-197), implemented from first principles.
//!
//! The S-box and its inverse are *derived* (multiplicative inverse in GF(2⁸) followed
//! by the affine transform) rather than hard-coded, and the whole cipher is validated
//! against the FIPS-197 appendix test vectors, so a table typo cannot silently corrupt
//! the scheme.

/// Number of 32-bit words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
const NR: usize = 10;

/// Multiply two elements of GF(2⁸) with the AES reduction polynomial x⁸+x⁴+x³+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), by exponentiation to the 254th power.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^(2+4+8+16+32+64+128)
    let mut result = 1u8;
    let mut power = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, power);
        }
        power = gf_mul(power, power);
        exp >>= 1;
    }
    result
}

/// Generate the AES S-box: affine transform of the field inverse.
fn generate_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    for (i, slot) in sbox.iter_mut().enumerate() {
        let inv = gf_inv(i as u8);
        let mut x = inv;
        let mut res = inv;
        for _ in 0..4 {
            x = x.rotate_left(1);
            res ^= x;
        }
        *slot = res ^ 0x63;
    }
    sbox
}

fn invert_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in sbox.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Derive the GF(2⁸) constant-multiplication table for `c` (used by MixColumns and
/// its inverse). Like the S-box, derived rather than hard-coded, so the FIPS-197
/// vector tests guard it.
fn gf_mul_table(c: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    for (i, slot) in t.iter_mut().enumerate() {
        *slot = gf_mul(i as u8, c);
    }
    t
}

/// Derive the four encryption T-tables (Rijndael's standard round linearisation:
/// SubBytes + MixColumns fused into one 32-bit lookup per state byte, the three
/// sibling tables being byte rotations of the first). Like the S-box they are
/// *derived*, so the FIPS-197 vector tests guard them.
fn generate_enc_tables(sbox: &[u8; 256]) -> [[u32; 256]; 4] {
    let mut te = [[0u32; 256]; 4];
    for i in 0..256 {
        let s = sbox[i];
        let word = u32::from_be_bytes([gf_mul(s, 2), s, s, gf_mul(s, 3)]);
        te[0][i] = word;
        te[1][i] = word.rotate_right(8);
        te[2][i] = word.rotate_right(16);
        te[3][i] = word.rotate_right(24);
    }
    te
}

/// All key-independent AES tables, derived once per process: S-box and inverse, the
/// fused encryption T-tables, and the InvMixColumns constant-multiplication tables.
struct AesTables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    te: [[u32; 256]; 4],
    mul9: [u8; 256],
    mul11: [u8; 256],
    mul13: [u8; 256],
    mul14: [u8; 256],
}

/// The shared, lazily-derived table set. Key expansion used to re-derive the S-box
/// (256 bit-serial field inversions) per cipher instance, which the F² pipeline pays
/// once per attribute per chunk — globally cached it is paid once per process.
fn tables() -> &'static AesTables {
    static TABLES: std::sync::OnceLock<AesTables> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let sbox = generate_sbox();
        AesTables {
            sbox,
            inv_sbox: invert_sbox(&sbox),
            te: generate_enc_tables(&sbox),
            mul9: gf_mul_table(9),
            mul11: gf_mul_table(11),
            mul13: gf_mul_table(13),
            mul14: gf_mul_table(14),
        }
    })
}

/// An expanded AES-128 key, ready to encrypt or decrypt 16-byte blocks.
///
/// The encryption path (every PRF evaluation — the system's innermost loop) runs on
/// fused T-tables: one round is 16 table lookups plus xors instead of byte-wise
/// SubBytes/ShiftRows/MixColumns with bit-serial GF(2⁸) multiplications. Decryption
/// (rare by comparison) keeps the byte-wise inverse rounds, with per-constant
/// multiplication tables replacing `gf_mul` in InvMixColumns. The instance stores
/// only the expanded key; all tables live in the process-wide [`tables`] cache.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
    /// Round keys as big-endian column words, for the T-table encrypt path.
    round_key_words: [[u32; 4]; NR + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Aes128 {{ .. }}")
    }
}

impl Aes128 {
    /// Expand a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let sbox = tables().sbox;
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for i in 0..NK {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        let mut round_key_words = [[0u32; 4]; NR + 1];
        for (r, rk) in round_keys.iter().enumerate() {
            for c in 0..4 {
                round_key_words[r][c] =
                    u32::from_be_bytes(rk[4 * c..4 * c + 4].try_into().expect("4 bytes"));
            }
        }
        Aes128 { round_keys, round_key_words }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = tables().inv_sbox[*b as usize];
        }
    }

    /// State layout: column-major, state[r + 4c].
    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    fn inv_mix_columns(&self, state: &mut [u8; 16]) {
        let t = tables();
        let (m9, m11, m13, m14) = (&t.mul9, &t.mul11, &t.mul13, &t.mul14);
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            let [s0, s1, s2, s3] = col.map(usize::from);
            state[4 * c] = m14[s0] ^ m11[s1] ^ m13[s2] ^ m9[s3];
            state[4 * c + 1] = m9[s0] ^ m14[s1] ^ m11[s2] ^ m13[s3];
            state[4 * c + 2] = m13[s0] ^ m9[s1] ^ m14[s2] ^ m11[s3];
            state[4 * c + 3] = m11[s0] ^ m13[s1] ^ m9[s2] ^ m14[s3];
        }
    }

    /// Encrypt one 16-byte block in place (T-table fast path).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let (te, rk) = (&tables().te, &self.round_key_words);
        // State as big-endian column words (word j = column j, byte 0 = row 0).
        let mut c = [0u32; 4];
        for (j, w) in c.iter_mut().enumerate() {
            *w =
                u32::from_be_bytes(block[4 * j..4 * j + 4].try_into().expect("4 bytes")) ^ rk[0][j];
        }
        for rk_round in &rk[1..NR] {
            let t = [
                te[0][(c[0] >> 24) as usize]
                    ^ te[1][((c[1] >> 16) & 0xff) as usize]
                    ^ te[2][((c[2] >> 8) & 0xff) as usize]
                    ^ te[3][(c[3] & 0xff) as usize]
                    ^ rk_round[0],
                te[0][(c[1] >> 24) as usize]
                    ^ te[1][((c[2] >> 16) & 0xff) as usize]
                    ^ te[2][((c[3] >> 8) & 0xff) as usize]
                    ^ te[3][(c[0] & 0xff) as usize]
                    ^ rk_round[1],
                te[0][(c[2] >> 24) as usize]
                    ^ te[1][((c[3] >> 16) & 0xff) as usize]
                    ^ te[2][((c[0] >> 8) & 0xff) as usize]
                    ^ te[3][(c[1] & 0xff) as usize]
                    ^ rk_round[2],
                te[0][(c[3] >> 24) as usize]
                    ^ te[1][((c[0] >> 16) & 0xff) as usize]
                    ^ te[2][((c[1] >> 8) & 0xff) as usize]
                    ^ te[3][(c[2] & 0xff) as usize]
                    ^ rk_round[3],
            ];
            c = t;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let sb = &tables().sbox;
        for j in 0..4 {
            let word = u32::from_be_bytes([
                sb[(c[j] >> 24) as usize],
                sb[((c[(j + 1) % 4] >> 16) & 0xff) as usize],
                sb[((c[(j + 2) % 4] >> 8) & 0xff) as usize],
                sb[(c[(j + 3) % 4] & 0xff) as usize],
            ]) ^ rk[NR][j];
            block[4 * j..4 * j + 4].copy_from_slice(&word.to_be_bytes());
        }
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            Self::inv_shift_rows(block);
            self.inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            self.inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        self.inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypt a copy of the block and return it.
    pub fn encrypt_block_copy(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_matches_known_entries() {
        let sbox = generate_sbox();
        // Spot-check well-known S-box entries from FIPS-197 Figure 7.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        let inv = invert_sbox(&sbox);
        for i in 0..=255u8 {
            assert_eq!(inv[sbox[i as usize] as usize], i);
        }
    }

    #[test]
    fn gf_arithmetic() {
        // Examples from FIPS-197 §4.2.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_blocks() {
        let aes = Aes128::new(&[7u8; 16]);
        for i in 0..64u8 {
            let mut block = [i; 16];
            block[0] = i.wrapping_mul(17);
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig, "ciphertext must differ from plaintext");
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new(&[1u8; 16]);
        let b = Aes128::new(&[2u8; 16]);
        let block = [0u8; 16];
        assert_ne!(a.encrypt_block_copy(&block), b.encrypt_block_copy(&block));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(&[9u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains('9'));
    }
}
