//! Deterministic cell encryption — the "AES" baseline of Figure 8.
//!
//! The paper's naive scheme (Figure 1(b)) encrypts every cell with a deterministic
//! cipher: equal plaintexts map to equal ciphertexts, which trivially preserves FDs but
//! leaks the exact frequency distribution and is therefore vulnerable to the frequency
//! analysis attack. We reproduce that baseline as AES-128 over the padded value
//! encoding with a synthetic-IV construction (the IV is a PRF of the plaintext), so the
//! mapping is deterministic per key yet not an ECB codebook of a single block.

use crate::aes::Aes128;
use crate::ciphertext::NONCE_LEN;
use crate::error::CryptoError;
use crate::keys::SecretKey;
use crate::prf::Prf;
use crate::Result;
use f2_relation::Value;

/// Deterministic, frequency-revealing cell cipher (the paper's AES baseline).
#[derive(Debug, Clone)]
pub struct DeterministicCipher {
    iv_prf: Prf,
    cipher: Aes128,
    mask_prf: Prf,
}

impl DeterministicCipher {
    /// Create a deterministic cipher from a secret key; independent sub-keys for the
    /// IV derivation and the body mask are derived internally.
    pub fn new(key: &SecretKey) -> Self {
        let root = Aes128::new(key.as_bytes());
        let mut iv_key = [0u8; 16];
        iv_key[0] = 1;
        root.encrypt_block(&mut iv_key);
        let mut mask_key = [0u8; 16];
        mask_key[0] = 2;
        root.encrypt_block(&mut mask_key);
        DeterministicCipher {
            iv_prf: Prf::new(&SecretKey::from_bytes(iv_key)),
            cipher: Aes128::new(key.as_bytes()),
            mask_prf: Prf::new(&SecretKey::from_bytes(mask_key)),
        }
    }

    /// Deterministically encrypt raw plaintext bytes.
    pub fn encrypt_bytes(&self, plaintext: &[u8]) -> Vec<u8> {
        // Synthetic IV: a PRF over the full plaintext, folded into one block.
        let mut iv = [0u8; 16];
        for (i, b) in plaintext.iter().enumerate() {
            iv[i % 16] ^= *b;
            iv[(i + 7) % 16] = iv[(i + 7) % 16].wrapping_add(*b).rotate_left(3);
        }
        iv = self.iv_prf.block(&iv);
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&(plaintext.len() as u64).to_le_bytes());
        for i in 0..16 {
            len_block[i] ^= iv[i];
        }
        let siv = self.cipher.encrypt_block_copy(&len_block);
        // Mask the body with a keystream seeded by the synthetic IV.
        let body = self.mask_prf.mask(&siv, plaintext);
        let mut out = Vec::with_capacity(NONCE_LEN + body.len());
        out.extend_from_slice(&siv);
        out.extend_from_slice(&body);
        out
    }

    /// Decrypt bytes produced by [`DeterministicCipher::encrypt_bytes`].
    pub fn decrypt_bytes(&self, ciphertext: &[u8]) -> Result<Vec<u8>> {
        if ciphertext.len() < NONCE_LEN {
            return Err(CryptoError::InvalidCiphertext(
                "deterministic ciphertext too short".into(),
            ));
        }
        let mut siv = [0u8; 16];
        siv.copy_from_slice(&ciphertext[..NONCE_LEN]);
        Ok(self.mask_prf.mask(&siv, &ciphertext[NONCE_LEN..]))
    }

    /// Encrypt a relational [`Value`] into a ciphertext cell.
    pub fn encrypt_value(&self, value: &Value) -> Value {
        Value::bytes(self.encrypt_bytes(&value.encode()))
    }

    /// Decrypt a ciphertext cell back to the original [`Value`].
    pub fn decrypt_value(&self, cell: &Value) -> Result<Value> {
        let bytes = cell
            .as_bytes()
            .ok_or_else(|| CryptoError::InvalidCiphertext("cell is not a byte string".into()))?;
        let plain = self.decrypt_bytes(bytes)?;
        Value::decode(&plain).ok_or(CryptoError::DecryptionFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> DeterministicCipher {
        DeterministicCipher::new(&SecretKey::from_bytes([0xAB; 16]))
    }

    #[test]
    fn deterministic_equal_plaintexts_equal_ciphertexts() {
        let c = cipher();
        let a = c.encrypt_value(&Value::text("a1"));
        let b = c.encrypt_value(&Value::text("a1"));
        assert_eq!(a, b, "deterministic encryption must preserve equality");
        let other = c.encrypt_value(&Value::text("a2"));
        assert_ne!(a, other);
    }

    #[test]
    fn roundtrip() {
        let c = cipher();
        for v in [
            Value::Null,
            Value::Int(7),
            Value::text("Zipcode determines City"),
            Value::money(10_000),
        ] {
            let e = c.encrypt_value(&v);
            assert_eq!(c.decrypt_value(&e).unwrap(), v);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = DeterministicCipher::new(&SecretKey::from_bytes([1u8; 16]));
        let b = DeterministicCipher::new(&SecretKey::from_bytes([2u8; 16]));
        assert_ne!(a.encrypt_value(&Value::Int(5)), b.encrypt_value(&Value::Int(5)));
    }

    #[test]
    fn similar_plaintexts_produce_unrelated_ciphertexts() {
        let c = cipher();
        let a = c.encrypt_bytes(b"aaaaaaaaaaaaaaaa");
        let b = c.encrypt_bytes(b"aaaaaaaaaaaaaaab");
        // SIV differs, so the whole ciphertext (including the first block) differs.
        assert_ne!(&a[..16], &b[..16]);
    }

    #[test]
    fn invalid_cells_rejected() {
        let c = cipher();
        assert!(c.decrypt_value(&Value::Int(3)).is_err());
        assert!(c.decrypt_value(&Value::bytes(vec![0u8; 4])).is_err());
    }
}
