//! Pseudorandom function `F_k` used by the probabilistic encryption scheme.
//!
//! The paper instantiates its cell cipher as `e = ⟨r, F_k(r) ⊕ p⟩` (§2.3). We realise
//! `F_k` as AES-128 in counter mode keyed by `k` and seeded by the 16-byte random
//! string `r`: the i-th keystream block is `AES_k(r ⊞ i)` where `⊞` is addition on the
//! last 8 bytes. This yields an arbitrary-length keystream so plaintexts of any length
//! can be masked.

use crate::aes::Aes128;
use crate::keys::SecretKey;

/// A keyed pseudorandom function with extendable output.
#[derive(Clone)]
pub struct Prf {
    cipher: Aes128,
}

impl std::fmt::Debug for Prf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Prf {{ .. }}")
    }
}

impl Prf {
    /// Create a PRF from a secret key.
    pub fn new(key: &SecretKey) -> Self {
        Prf { cipher: Aes128::new(key.as_bytes()) }
    }

    /// Evaluate `F_k(r)` producing `len` bytes of keystream.
    pub fn keystream(&self, r: &[u8; 16], len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.keystream_into(r, &mut out);
        out
    }

    /// Fill `out` with `F_k(r)` — the write-into-buffer form of [`Prf::keystream`].
    /// Works block-at-a-time on the stack; no heap allocation.
    pub fn keystream_into(&self, r: &[u8; 16], out: &mut [u8]) {
        crate::obs::aes_blocks().add(out.len().div_ceil(16) as u64);
        let low = u64::from_le_bytes(r[8..16].try_into().expect("8 bytes"));
        for (counter, chunk) in out.chunks_mut(16).enumerate() {
            let mut block = *r;
            // Mix the counter into the low 8 bytes (wrapping addition).
            block[8..16].copy_from_slice(&low.wrapping_add(counter as u64).to_le_bytes());
            self.cipher.encrypt_block(&mut block);
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
    }

    /// XOR `data` with `F_k(r)`. Applying it twice recovers the original bytes.
    pub fn mask(&self, r: &[u8; 16], data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; data.len()];
        self.mask_into(r, data, &mut out);
        out
    }

    /// Write `data ⊕ F_k(r)` into `out` (same length as `data`) — the bulk-encryption
    /// form of [`Prf::mask`]: one stack block per 16 bytes, no heap allocation.
    ///
    /// # Panics
    /// Panics if `out.len() != data.len()` — silently truncating a ciphertext would
    /// be far worse than the one branch this costs.
    pub fn mask_into(&self, r: &[u8; 16], data: &[u8], out: &mut [u8]) {
        assert_eq!(data.len(), out.len(), "mask_into buffers must have equal length");
        crate::obs::aes_blocks().add(data.len().div_ceil(16) as u64);
        let low = u64::from_le_bytes(r[8..16].try_into().expect("8 bytes"));
        for (counter, (dchunk, ochunk)) in data.chunks(16).zip(out.chunks_mut(16)).enumerate() {
            let mut block = *r;
            block[8..16].copy_from_slice(&low.wrapping_add(counter as u64).to_le_bytes());
            self.cipher.encrypt_block(&mut block);
            for ((o, d), k) in ochunk.iter_mut().zip(dchunk).zip(&block) {
                *o = d ^ k;
            }
        }
    }

    /// Evaluate the PRF on a single 16-byte block (used for sub-key derivation).
    pub fn block(&self, input: &[u8; 16]) -> [u8; 16] {
        crate::obs::aes_blocks().inc();
        self.cipher.encrypt_block_copy(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prf() -> Prf {
        Prf::new(&SecretKey::from_bytes([0x42; 16]))
    }

    #[test]
    fn keystream_is_deterministic_and_length_exact() {
        let p = prf();
        let r = [1u8; 16];
        for len in [0usize, 1, 15, 16, 17, 33, 100] {
            let a = p.keystream(&r, len);
            let b = p.keystream(&r, len);
            assert_eq!(a.len(), len);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn keystream_differs_across_nonces_and_keys() {
        let p = prf();
        let a = p.keystream(&[1u8; 16], 32);
        let b = p.keystream(&[2u8; 16], 32);
        assert_ne!(a, b);
        let other = Prf::new(&SecretKey::from_bytes([0x43; 16]));
        assert_ne!(a, other.keystream(&[1u8; 16], 32));
    }

    #[test]
    fn keystream_blocks_are_distinct() {
        // Counter mode: consecutive blocks of the same keystream must differ.
        let p = prf();
        let ks = p.keystream(&[9u8; 16], 64);
        assert_ne!(&ks[0..16], &ks[16..32]);
        assert_ne!(&ks[16..32], &ks[32..48]);
    }

    #[test]
    fn mask_is_an_involution() {
        let p = prf();
        let r = [7u8; 16];
        let data = b"functional dependencies are preserved".to_vec();
        let masked = p.mask(&r, &data);
        assert_ne!(masked, data);
        let unmasked = p.mask(&r, &masked);
        assert_eq!(unmasked, data);
    }

    #[test]
    fn prefix_property() {
        // The first bytes of a longer keystream equal a shorter keystream.
        let p = prf();
        let r = [3u8; 16];
        let long = p.keystream(&r, 48);
        let short = p.keystream(&r, 20);
        assert_eq!(&long[..20], &short[..]);
    }
}
