//! The paper's probabilistic cell cipher: `e = ⟨r, F_k(r) ⊕ p⟩` (§2.3, §3.2.2).
//!
//! Encrypting the same plaintext twice draws two independent random strings `r`, hence
//! produces two unlinkable ciphertexts — this is exactly the property F² uses to split
//! an equivalence class into several ciphertext instances (Requirement 2 of
//! Definition 3.1). Decryption recomputes `F_k(r)` from the stored `r` and XORs it away.

use crate::ciphertext::{Ciphertext, NONCE_LEN};
use crate::error::CryptoError;
use crate::keys::SecretKey;
use crate::prf::Prf;
use crate::Result;
use f2_relation::Value;
use rand::Rng;

/// Probabilistic, symmetric, frequency-hiding cell cipher.
#[derive(Debug, Clone)]
pub struct ProbabilisticCipher {
    prf: Prf,
}

/// Reusable buffers for [`ProbabilisticCipher::encrypt_value_to_cell_buffered`]:
/// holds the encoded plaintext and the framed cell between cells so per-cell
/// encryption performs exactly one allocation (the refcounted buffer the cell
/// keeps). One scratch per encryption loop.
#[derive(Debug, Default)]
pub struct CellScratch {
    plain: Vec<u8>,
    cell: Vec<u8>,
}

impl ProbabilisticCipher {
    /// Create a cipher from a secret key.
    pub fn new(key: &SecretKey) -> Self {
        ProbabilisticCipher { prf: Prf::new(key) }
    }

    /// Encrypt raw plaintext bytes with a caller-supplied random string `r`.
    ///
    /// Exposed so that F² can reuse *one* ciphertext for all rows of the same
    /// ciphertext instance (the instance is sampled once, then copied).
    pub fn encrypt_bytes_with_nonce(&self, nonce: [u8; NONCE_LEN], plaintext: &[u8]) -> Ciphertext {
        let body = self.prf.mask(&nonce, plaintext);
        Ciphertext::new(nonce, body)
    }

    /// Encrypt raw plaintext bytes with a fresh random string.
    pub fn encrypt_bytes(&self, plaintext: &[u8], rng: &mut impl Rng) -> Ciphertext {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        self.encrypt_bytes_with_nonce(nonce, plaintext)
    }

    /// Decrypt to raw plaintext bytes.
    pub fn decrypt_bytes(&self, ciphertext: &Ciphertext) -> Vec<u8> {
        self.prf.mask(ciphertext.nonce(), ciphertext.body())
    }

    /// Encrypt a relational [`Value`] (the plaintext is its self-describing encoding).
    pub fn encrypt_value(&self, value: &Value, rng: &mut impl Rng) -> Ciphertext {
        self.encrypt_bytes(&value.encode(), rng)
    }

    /// Encrypt a relational [`Value`] and return it framed as a ciphertext cell.
    pub fn encrypt_value_to_cell(&self, value: &Value, rng: &mut impl Rng) -> Value {
        self.encrypt_value_to_cell_buffered(value, rng, &mut CellScratch::default())
    }

    /// [`ProbabilisticCipher::encrypt_value_to_cell`] with a caller-owned scratch
    /// buffer: the value is encoded into the reused scratch, the nonce and masked
    /// body are written straight into the one allocation that becomes the cell, and
    /// nothing else touches the heap. Bulk encryptors (the F² assembly loop, the
    /// cell-wise probabilistic backend) call this in a loop with one scratch.
    ///
    /// Output is byte-identical to the unbuffered path (same RNG draws, same
    /// `nonce ‖ body` framing).
    pub fn encrypt_value_to_cell_buffered(
        &self,
        value: &Value,
        rng: &mut impl Rng,
        scratch: &mut CellScratch,
    ) -> Value {
        scratch.plain.clear();
        value.encode_into(&mut scratch.plain);
        scratch.cell.clear();
        scratch.cell.resize(NONCE_LEN + scratch.plain.len(), 0);
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        scratch.cell[..NONCE_LEN].copy_from_slice(&nonce);
        self.prf.mask_into(&nonce, &scratch.plain, &mut scratch.cell[NONCE_LEN..]);
        Value::bytes(bytes::Bytes::copy_from_slice(&scratch.cell))
    }

    /// Decrypt a ciphertext back to the original [`Value`].
    pub fn decrypt_value(&self, ciphertext: &Ciphertext) -> Result<Value> {
        Value::decode(&self.decrypt_bytes(ciphertext)).ok_or(CryptoError::DecryptionFailed)
    }

    /// Decrypt a ciphertext cell (as stored in the encrypted table) back to a [`Value`].
    pub fn decrypt_cell(&self, cell: &Value) -> Result<Value> {
        let bytes = cell
            .as_bytes()
            .ok_or_else(|| CryptoError::InvalidCiphertext("cell is not a byte string".into()))?;
        let ct = Ciphertext::from_bytes(bytes)?;
        self.decrypt_value(&ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cipher() -> ProbabilisticCipher {
        ProbabilisticCipher::new(&SecretKey::from_bytes([3u8; 16]))
    }

    #[test]
    fn roundtrip_values() {
        let c = cipher();
        let mut rng = StdRng::seed_from_u64(1);
        for v in [
            Value::Null,
            Value::Int(12345),
            Value::text("Hoboken"),
            Value::money(199),
            Value::Date(42),
            Value::bytes(vec![0u8; 40]),
        ] {
            let ct = c.encrypt_value(&v, &mut rng);
            assert_eq!(c.decrypt_value(&ct).unwrap(), v);
        }
    }

    #[test]
    fn probabilistic_encryption_hides_equality() {
        // Same plaintext, two encryptions → different ciphertexts (frequency hiding).
        let c = cipher();
        let mut rng = StdRng::seed_from_u64(2);
        let v = Value::text("a1");
        let e1 = c.encrypt_value(&v, &mut rng);
        let e2 = c.encrypt_value(&v, &mut rng);
        assert_ne!(e1, e2);
        assert_eq!(c.decrypt_value(&e1).unwrap(), c.decrypt_value(&e2).unwrap());
    }

    #[test]
    fn same_nonce_same_ciphertext() {
        // F² reuses one ciphertext for all members of a ciphertext instance.
        let c = cipher();
        let v = Value::text("instance");
        let e1 = c.encrypt_bytes_with_nonce([9u8; 16], &v.encode());
        let e2 = c.encrypt_bytes_with_nonce([9u8; 16], &v.encode());
        assert_eq!(e1, e2);
    }

    #[test]
    fn wrong_key_does_not_decrypt() {
        let c = cipher();
        let other = ProbabilisticCipher::new(&SecretKey::from_bytes([4u8; 16]));
        let mut rng = StdRng::seed_from_u64(3);
        let ct = c.encrypt_value(&Value::text("secret"), &mut rng);
        // With the wrong key the mask is wrong; decoding either fails or yields a
        // different value.
        match other.decrypt_value(&ct) {
            Ok(v) => assert_ne!(v, Value::text("secret")),
            Err(e) => assert_eq!(e, CryptoError::DecryptionFailed),
        }
    }

    #[test]
    fn cell_roundtrip() {
        let c = cipher();
        let mut rng = StdRng::seed_from_u64(4);
        let v = Value::Int(-9);
        let cell = c.encrypt_value_to_cell(&v, &mut rng);
        assert!(cell.is_bytes());
        assert_eq!(c.decrypt_cell(&cell).unwrap(), v);
        assert!(c.decrypt_cell(&Value::text("not bytes")).is_err());
        assert!(c.decrypt_cell(&Value::bytes(vec![1, 2])).is_err());
    }

    #[test]
    fn ciphertext_length_tracks_plaintext_length() {
        let c = cipher();
        let mut rng = StdRng::seed_from_u64(5);
        let short = c.encrypt_value(&Value::text("ab"), &mut rng);
        let long = c.encrypt_value(&Value::text("abcdefghijklmnop"), &mut rng);
        assert!(long.len() > short.len());
    }
}
