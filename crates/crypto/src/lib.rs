//! # f2-crypto — cryptographic substrate for the F² encryption scheme
//!
//! The paper relies on three cryptographic building blocks, all implemented here from
//! scratch (the offline crate set contains no cryptography crates — see DESIGN.md):
//!
//! * **AES-128** ([`aes`]) — the block cipher underlying both the deterministic
//!   baseline ("the AES baseline approach uses the well-known AES algorithm for the
//!   deterministic encryption", §5.1) and the pseudorandom function of the
//!   probabilistic scheme. Validated against the FIPS-197 test vectors.
//! * **PRF-based probabilistic encryption** ([`prob`]) — the paper's cell cipher
//!   `e = ⟨r, F_k(r) ⊕ p⟩` where `r` is a fresh random string and `F` a pseudorandom
//!   function (§2.3, §3.2.2). `F_k` is instantiated as AES-128 in counter mode.
//! * **Paillier** ([`paillier`]) — the probabilistic public-key baseline of Figure 8,
//!   built on an arbitrary-precision integer implementation ([`bigint`]: u64 limbs,
//!   Miller–Rabin prime generation) and a Montgomery/REDC modular-arithmetic engine
//!   ([`montgomery`]: windowed exponentiation with zero divisions in the loop), so
//!   that its per-cell cost has the realistic "orders of magnitude slower than
//!   symmetric encryption" shape without being an artifact of a toy bignum.
//!
//! Key management ([`keys`]) derives independent per-attribute sub-keys from a master
//! key so that equal plaintexts in different columns never produce related ciphertexts.
//!
//! ## Security caveat
//!
//! This crate is a faithful *reproduction substrate* for a research paper: the
//! primitives are implemented for correctness and benchmarking shape, not for
//! side-channel resistance or production deployment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bigint;
pub mod ciphertext;
pub mod det;
pub mod error;
pub mod keys;
pub mod montgomery;
pub(crate) mod obs;
pub mod paillier;
pub mod prf;
pub mod prob;

pub use aes::Aes128;
pub use bigint::BigUint;
pub use ciphertext::Ciphertext;
pub use det::DeterministicCipher;
pub use error::CryptoError;
pub use keys::{entropy_seed, splitmix64, KeyMaterial, MasterKey, SecretKey};
pub use montgomery::Montgomery;
pub use paillier::{PaillierCiphertext, PaillierKeyPair, PaillierPublicKey, RandomnessPool};
pub use prf::Prf;
pub use prob::{CellScratch, ProbabilisticCipher};

/// Result alias for cryptographic operations.
pub type Result<T> = std::result::Result<T, CryptoError>;
