//! Paillier public-key encryption — the probabilistic baseline of Figure 8.
//!
//! The paper compares F² against "the asymmetric Paillier encryption for the
//! probabilistic encryption" (§5.1) and observes that Paillier is orders of magnitude
//! slower (it "cannot finish within one day when the data size reaches 0.653GB"). To
//! reproduce that comparison without an external crypto crate we implement textbook
//! Paillier on top of [`crate::BigUint`] and the Montgomery engine
//! ([`crate::Montgomery`]):
//!
//! * key generation with two random primes `p`, `q` (Miller–Rabin),
//! * encryption `c = (1 + m·n) · rⁿ mod n²` using the standard `g = n + 1` shortcut,
//!   with the `rⁿ` exponentiation running in a per-key Montgomery context for `n²`,
//! * decryption `m = L(c^λ mod n²) · μ mod n`, computed by default via the standard
//!   CRT speed-up over `p²` and `q²` (half-width moduli, half-length exponents —
//!   roughly 4× less multiplication work than the direct form, same result;
//!   [`PaillierKeyPair::decrypt_generic`] keeps the direct path for equivalence
//!   testing),
//! * the additive homomorphism `E(m₁)·E(m₂) = E(m₁+m₂)`,
//! * a [`RandomnessPool`] that amortises the `rⁿ mod n²` blinding exponentiation
//!   across bulk encryptions ([`PaillierPublicKey::encrypt_batch`]).
//!
//! The default modulus size is 512 bits — small by modern deployment standards but
//! large enough that the *relative* cost of Paillier versus AES-based encryption
//! matches the paper's qualitative result (see DESIGN.md, substitutions table).

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::montgomery::Montgomery;
use crate::Result;
use f2_relation::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// Default modulus size (bits) used by the benchmark harness.
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// Paillier public key `(n, n²)` with a precomputed Montgomery context for `n²`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
    /// Montgomery context for `Z_{n²}` — `n²` is odd (product of odd primes), so the
    /// whole encryption hot path runs division-free.
    mont_n2: Montgomery,
}

/// Paillier ciphertext: an element of `Z*_{n²}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierCiphertext(BigUint);

impl PaillierCiphertext {
    /// Serialize as a big-endian byte string (no fixed width; use
    /// [`PaillierPublicKey::ciphertext_width`] to frame several ciphertexts in one
    /// buffer).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Parse a big-endian byte string produced by
    /// [`PaillierCiphertext::to_bytes_be`] (leading zero bytes are allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        PaillierCiphertext(BigUint::from_bytes_be(bytes))
    }
}

/// A pool of precomputed `rⁿ mod n²` blinding factors (in Montgomery form).
///
/// The dominating cost of a Paillier encryption is the blinding exponentiation
/// `rⁿ mod n²` — `(1 + m·n)` is a single multiplication. This pool front-loads two
/// full exponentiations and then derives each subsequent blinding factor with one
/// Montgomery multiplication plus one **64-bit** exponentiation: on every draw two
/// pooled factors fold together (`fᵢ ← fᵢ·fⱼ`) and the result is raised to a secret
/// odd 64-bit exponent `e` drawn from the pool's own RNG. Both steps preserve the
/// `(·)ⁿ` shape (`rᵢⁿ·rⱼⁿ = (rᵢ·rⱼ)ⁿ`, `(rⁿ)ᵉ = (rᵉ)ⁿ`), so ciphertexts stay
/// well-formed and decrypt normally at roughly an eighth of the full-exponentiation
/// cost (a 64-bit exponent versus the |n|-bit one).
///
/// The secret per-draw exponent is what makes the amortisation sound: without it,
/// the fold walk alone yields draws with *publicly computable* multiplicative
/// relations (after one cursor cycle, a draw equals the product of two earlier
/// ones), which would let a keyless adversary cancel blindings across ciphertexts
/// of one batch and read off linear relations between plaintexts.
///
/// **Security trade-off:** pool draws are still derived from two base randomizers
/// and the pool RNG rather than independent per-message randomness. That matches
/// this repository's purpose — an honest *timing* baseline for the paper's Figure 8
/// comparison — but a real deployment should pay for a fresh full exponentiation
/// per message ([`PaillierPublicKey::encrypt`] still does).
#[derive(Debug, Clone)]
pub struct RandomnessPool {
    /// Montgomery-form blinding factors `rᵢⁿ·R mod n²`.
    factors: Vec<BigUint>,
    /// Rotating index of the factor mutated by the next draw.
    cursor: usize,
    /// Source of the secret per-draw exponents.
    rng: StdRng,
    /// The `n²` the factors were computed under (guards against key mix-ups).
    n_squared: BigUint,
}

impl RandomnessPool {
    /// Default number of pooled factors.
    pub const DEFAULT_SIZE: usize = 8;

    /// Build a pool of `size` factors (clamped to ≥ 2) for `public`.
    ///
    /// Costs two full `rⁿ` exponentiations; the remaining slots are filled by
    /// squaring (`(rⁿ)² = (r²)ⁿ`, one multiplication each), so pool construction is
    /// cheap even when a table only yields a handful of chunks.
    pub fn new(public: &PaillierPublicKey, size: usize, rng: &mut impl Rng) -> Self {
        let size = size.max(2);
        let mut factors = Vec::with_capacity(size);
        for _ in 0..2 {
            let r = public.sample_coprime(rng);
            factors.push(public.mont_n2.pow_mont(&r, &public.n));
        }
        while factors.len() < size {
            let prev = factors.last().expect("seeded above");
            factors.push(public.mont_n2.mont_mul(prev, prev));
        }
        RandomnessPool {
            factors,
            cursor: 0,
            rng: StdRng::seed_from_u64(rng.next_u64()),
            n_squared: public.n_squared.clone(),
        }
    }

    /// Number of pooled factors.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// True if the pool holds no factors (never the case for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Draw the next Montgomery-form blinding factor: fold two pooled factors and
    /// raise the result to a secret odd 64-bit exponent.
    fn next_blinding(&mut self, public: &PaillierPublicKey) -> BigUint {
        crate::obs::pool_draws().inc();
        debug_assert_eq!(
            self.n_squared, public.n_squared,
            "randomness pool used with a different Paillier key"
        );
        let i = self.cursor;
        let j = (i + 1) % self.factors.len();
        self.cursor = j;
        let folded = public.mont_n2.mont_mul(&self.factors[i], &self.factors[j]);
        self.factors[i] = folded.clone();
        // Odd exponent: never zero, and coprime with the order-2 part of Z*_{n²}.
        let e = BigUint::from_u64(self.rng.next_u64() | 1);
        public.mont_n2.pow_mont_of(&folded, &e)
    }
}

/// A Paillier key pair: public key plus the private factorisation (`p`, `q`) with
/// precomputed CRT decryption data, and the textbook `λ`, `μ` for the generic path.
#[derive(Debug, Clone)]
pub struct PaillierKeyPair {
    public: PaillierPublicKey,
    lambda: BigUint,
    mu: BigUint,
    /// First prime factor of `n`.
    p: BigUint,
    /// Second prime factor of `n`.
    q: BigUint,
    /// Montgomery context for `Z_{p²}` (CRT leg 1).
    mont_p2: Montgomery,
    /// Montgomery context for `Z_{q²}` (CRT leg 2).
    mont_q2: Montgomery,
    /// `p − 1` (CRT exponent; Fermat replaces λ on each leg).
    p_minus_1: BigUint,
    /// `q − 1`.
    q_minus_1: BigUint,
    /// `hp = L_p(g^(p−1) mod p²)⁻¹ mod p`.
    hp: BigUint,
    /// `hq = L_q(g^(q−1) mod q²)⁻¹ mod q`.
    hq: BigUint,
    /// `p⁻¹ mod q` (Garner recombination).
    p_inv_mod_q: BigUint,
}

impl PaillierPublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The Montgomery context for `n²` (for callers composing their own
    /// ciphertext-space arithmetic, e.g. bulk homomorphic aggregation).
    pub fn n_squared_context(&self) -> &Montgomery {
        &self.mont_n2
    }

    /// Sample `r` uniformly from `[1, n)` coprime with `n` (overwhelmingly likely on
    /// the first draw for an honest modulus).
    fn sample_coprime(&self, rng: &mut impl Rng) -> BigUint {
        loop {
            let candidate = BigUint::random_below(&self.n, rng);
            if candidate.gcd(&self.n).is_one() {
                break candidate;
            }
        }
    }

    /// `g^m = (n+1)^m = 1 + m·n (mod n²)` — the cheap half of an encryption.
    fn g_pow_m(&self, m: &BigUint) -> BigUint {
        BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared)
    }

    /// Encrypt a message `m < n` with fresh randomness (one full `rⁿ`
    /// exponentiation; bulk callers should use [`PaillierPublicKey::encrypt_batch`]).
    pub fn encrypt(&self, m: &BigUint, rng: &mut impl Rng) -> Result<PaillierCiphertext> {
        if m.cmp_to(&self.n) != Ordering::Less {
            return Err(CryptoError::MessageOutOfRange);
        }
        let r = self.sample_coprime(rng);
        // rⁿ in Montgomery form; multiplying the plain (1 + m·n) by a Montgomery
        // operand yields the plain product — no conversions on the output.
        let r_n_mont = self.mont_n2.pow_mont(&r, &self.n);
        Ok(PaillierCiphertext(self.mont_n2.mont_mul(&self.g_pow_m(m), &r_n_mont)))
    }

    /// Encrypt with a pooled blinding factor: one Montgomery multiplication for the
    /// blinding instead of a full exponentiation (see [`RandomnessPool`]).
    pub fn encrypt_with_pool(
        &self,
        m: &BigUint,
        pool: &mut RandomnessPool,
    ) -> Result<PaillierCiphertext> {
        if m.cmp_to(&self.n) != Ordering::Less {
            return Err(CryptoError::MessageOutOfRange);
        }
        let blinding = pool.next_blinding(self);
        Ok(PaillierCiphertext(self.mont_n2.mont_mul(&self.g_pow_m(m), &blinding)))
    }

    /// Encrypt a batch of messages through one [`RandomnessPool`] — the bulk entry
    /// point the table-encryption backends (and the streaming engine's chunk
    /// workers, via `PaillierScheme::encrypt`) drive. After the pool's fixed setup
    /// cost, each message costs two Montgomery multiplications plus one `(1 + m·n)`
    /// product.
    pub fn encrypt_batch(
        &self,
        messages: &[BigUint],
        pool: &mut RandomnessPool,
    ) -> Result<Vec<PaillierCiphertext>> {
        messages.iter().map(|m| self.encrypt_with_pool(m, pool)).collect()
    }

    /// Encrypt a relational [`Value`]: the value's encoding is folded into an integer
    /// smaller than `n`. This is the per-cell operation timed in Figure 8.
    pub fn encrypt_value(&self, value: &Value, rng: &mut impl Rng) -> Result<PaillierCiphertext> {
        let m = fold_value(value, &self.n);
        self.encrypt(&m, rng)
    }

    /// Fixed serialized width (bytes) that can hold any ciphertext under this key:
    /// ciphertexts are elements of `Z_{n²}`, so `⌈bits(n²) / 8⌉` bytes suffice.
    pub fn ciphertext_width(&self) -> usize {
        self.n_squared.bits().div_ceil(8)
    }

    /// Largest number of plaintext bytes that can be embedded losslessly in one
    /// ciphertext: a `0x01`-prefixed chunk of this size is an integer below `2^(8·k)`
    /// with `8·k < bits(n)`, hence strictly smaller than `n`. Returns 0 (rather than
    /// underflowing) for moduli too small to carry any payload byte.
    pub fn plaintext_chunk_size(&self) -> usize {
        (self.n.bits().saturating_sub(1) / 8).saturating_sub(1)
    }

    /// Homomorphic addition: `E(m1) ⊕ E(m2) = E(m1 + m2 mod n)`.
    pub fn add_ciphertexts(
        &self,
        a: &PaillierCiphertext,
        b: &PaillierCiphertext,
    ) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mul_mod(&b.0, &self.n_squared))
    }
}

impl PaillierKeyPair {
    /// Generate a key pair with the given modulus size in bits.
    pub fn generate(modulus_bits: usize, rng: &mut impl Rng) -> Result<Self> {
        if modulus_bits < 16 || !modulus_bits.is_multiple_of(2) {
            return Err(CryptoError::KeyGeneration(format!(
                "modulus size {modulus_bits} must be an even number of bits ≥ 16"
            )));
        }
        let half = modulus_bits / 2;
        let (p, q) = loop {
            let p = BigUint::generate_prime(half, rng);
            let q = BigUint::generate_prime(half, rng);
            if p != q {
                break (p, q);
            }
        };
        let n = p.mul(&q);
        let n_squared = n.mul(&n);
        let one = BigUint::one();
        let lambda = p.sub(&one).lcm(&q.sub(&one));
        // mu = (L(g^lambda mod n^2))^{-1} mod n, with g = n + 1:
        // g^lambda mod n^2 = 1 + lambda*n (mod n^2), so L(..) = lambda mod n.
        let mont_n2 = Montgomery::new(&n_squared)
            .ok_or_else(|| CryptoError::KeyGeneration("modulus n² not odd".into()))?;
        let g = n.add(&one);
        let g_lambda = mont_n2.pow(&g, &lambda);
        let l = l_function(&g_lambda, &n)?;
        let mu = l
            .mod_inverse(&n)
            .ok_or_else(|| CryptoError::KeyGeneration("L(g^λ) not invertible".into()))?;
        // CRT decryption data. With g = n + 1 and n ≡ 0 mod p·q:
        // g^(p−1) mod p² = 1 + (p−1)·n mod p² (higher powers of n vanish mod p²),
        // so L_p(g^(p−1)) = (p−1)·q mod p — no exponentiation needed here.
        let p_squared = p.mul(&p);
        let q_squared = q.mul(&q);
        let mont_p2 = Montgomery::new(&p_squared)
            .ok_or_else(|| CryptoError::KeyGeneration("p² not odd".into()))?;
        let mont_q2 = Montgomery::new(&q_squared)
            .ok_or_else(|| CryptoError::KeyGeneration("q² not odd".into()))?;
        let p_minus_1 = p.sub(&one);
        let q_minus_1 = q.sub(&one);
        let hp = p_minus_1
            .mul(&q)
            .rem(&p)
            .mod_inverse(&p)
            .ok_or_else(|| CryptoError::KeyGeneration("L_p(g^(p−1)) not invertible".into()))?;
        let hq = q_minus_1
            .mul(&p)
            .rem(&q)
            .mod_inverse(&q)
            .ok_or_else(|| CryptoError::KeyGeneration("L_q(g^(q−1)) not invertible".into()))?;
        let p_inv_mod_q = p
            .mod_inverse(&q)
            .ok_or_else(|| CryptoError::KeyGeneration("p not invertible mod q".into()))?;
        Ok(PaillierKeyPair {
            public: PaillierPublicKey { n, n_squared, mont_n2 },
            lambda,
            mu,
            p,
            q,
            mont_p2,
            mont_q2,
            p_minus_1,
            q_minus_1,
            hp,
            hq,
            p_inv_mod_q,
        })
    }

    /// The public key.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypt a ciphertext back to the message `m < n` (CRT fast path).
    ///
    /// Computes `m` modulo `p` and `q` separately — exponent `p−1` (Fermat) over the
    /// half-width modulus `p²`, both in Montgomery form — and recombines with
    /// Garner's formula. Identical output to [`PaillierKeyPair::decrypt_generic`]
    /// (property-tested) at roughly a quarter of the multiplication work.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> Result<BigUint> {
        let m_p = self.decrypt_leg(&c.0, &self.p, &self.mont_p2, &self.p_minus_1, &self.hp)?;
        let m_q = self.decrypt_leg(&c.0, &self.q, &self.mont_q2, &self.q_minus_1, &self.hq)?;
        // Garner: m = m_p + p·((m_q − m_p)·p⁻¹ mod q).
        let diff = m_q.add(&self.q).sub(&m_p.rem(&self.q)).rem(&self.q);
        let t = diff.mul_mod(&self.p_inv_mod_q, &self.q);
        Ok(m_p.add(&self.p.mul(&t)))
    }

    /// One CRT leg: `L_s(c^(s−1) mod s²) · h_s mod s` for a prime factor `s`.
    fn decrypt_leg(
        &self,
        c: &BigUint,
        s: &BigUint,
        mont_s2: &Montgomery,
        s_minus_1: &BigUint,
        h: &BigUint,
    ) -> Result<BigUint> {
        let x = mont_s2.pow(c, s_minus_1);
        let l = l_function(&x, s)?;
        Ok(l.mul_mod(h, s))
    }

    /// Decrypt via the textbook direct formula `m = L(c^λ mod n²) · μ mod n` —
    /// kept as the reference implementation the CRT path is equivalence-tested
    /// against.
    pub fn decrypt_generic(&self, c: &PaillierCiphertext) -> Result<BigUint> {
        let x = self.public.mont_n2.pow(&c.0, &self.lambda);
        let l = l_function(&x, &self.public.n)?;
        Ok(l.mul_mod(&self.mu, &self.public.n))
    }
}

/// Paillier's `L(x) = (x - 1) / n`; fails if `x − 1` is not divisible by `n` (which
/// never happens for valid input).
fn l_function(x: &BigUint, n: &BigUint) -> Result<BigUint> {
    if x.is_zero() {
        return Err(CryptoError::InvalidCiphertext("L(0) undefined".into()));
    }
    let (q, r) = x.sub(&BigUint::one()).div_rem(n);
    if !r.is_zero() {
        return Err(CryptoError::InvalidCiphertext("x - 1 not divisible by n".into()));
    }
    Ok(q)
}

/// Fold an arbitrary value encoding into an integer `< n`.
fn fold_value(value: &Value, n: &BigUint) -> BigUint {
    let bytes = value.encode();
    BigUint::from_bytes_be(&bytes).rem(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_keypair(seed: u64) -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        PaillierKeyPair::generate(128, &mut rng).unwrap()
    }

    #[test]
    fn keygen_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(PaillierKeyPair::generate(15, &mut rng).is_err());
        assert!(PaillierKeyPair::generate(14, &mut rng).is_err());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = small_keypair(1);
        let mut rng = StdRng::seed_from_u64(2);
        for m in [0u64, 1, 42, 9999, 123_456_789] {
            let msg = BigUint::from_u64(m);
            let c = kp.public().encrypt(&msg, &mut rng).unwrap();
            assert_eq!(kp.decrypt(&c).unwrap(), msg);
            assert_eq!(kp.decrypt_generic(&c).unwrap(), msg);
        }
    }

    #[test]
    fn encryption_is_probabilistic() {
        let kp = small_keypair(3);
        let mut rng = StdRng::seed_from_u64(4);
        let m = BigUint::from_u64(77);
        let c1 = kp.public().encrypt(&m, &mut rng).unwrap();
        let c2 = kp.public().encrypt(&m, &mut rng).unwrap();
        assert_ne!(c1, c2, "Paillier must be probabilistic");
        assert_eq!(kp.decrypt(&c1).unwrap(), kp.decrypt(&c2).unwrap());
    }

    #[test]
    fn additive_homomorphism() {
        let kp = small_keypair(5);
        let mut rng = StdRng::seed_from_u64(6);
        let a = BigUint::from_u64(1000);
        let b = BigUint::from_u64(2345);
        let ca = kp.public().encrypt(&a, &mut rng).unwrap();
        let cb = kp.public().encrypt(&b, &mut rng).unwrap();
        let sum = kp.public().add_ciphertexts(&ca, &cb);
        assert_eq!(kp.decrypt(&sum).unwrap(), BigUint::from_u64(3345));
    }

    #[test]
    fn message_out_of_range_rejected() {
        let kp = small_keypair(7);
        let mut rng = StdRng::seed_from_u64(8);
        let too_big = kp.public().modulus().clone();
        assert_eq!(
            kp.public().encrypt(&too_big, &mut rng).unwrap_err(),
            CryptoError::MessageOutOfRange
        );
        let mut pool = RandomnessPool::new(kp.public(), 4, &mut rng);
        assert_eq!(
            kp.public().encrypt_with_pool(&too_big, &mut pool).unwrap_err(),
            CryptoError::MessageOutOfRange
        );
    }

    #[test]
    fn value_encryption() {
        let kp = small_keypair(9);
        let mut rng = StdRng::seed_from_u64(10);
        let c = kp.public().encrypt_value(&Value::text("Hoboken NJ"), &mut rng).unwrap();
        // Decrypts to the folded integer (lossy by design — only timing matters for the
        // baseline), and decryption must succeed.
        assert!(kp.decrypt(&c).is_ok());
    }

    #[test]
    fn pooled_encryption_roundtrips_and_varies() {
        let kp = small_keypair(11);
        let mut rng = StdRng::seed_from_u64(12);
        let mut pool = RandomnessPool::new(kp.public(), RandomnessPool::DEFAULT_SIZE, &mut rng);
        assert_eq!(pool.len(), RandomnessPool::DEFAULT_SIZE);
        assert!(!pool.is_empty());
        let m = BigUint::from_u64(424_242);
        let c1 = kp.public().encrypt_with_pool(&m, &mut pool).unwrap();
        let c2 = kp.public().encrypt_with_pool(&m, &mut pool).unwrap();
        assert_ne!(c1, c2, "pool must vary blinding factors between draws");
        assert_eq!(kp.decrypt(&c1).unwrap(), m);
        assert_eq!(kp.decrypt(&c2).unwrap(), m);
        // Tiny pools are clamped to ≥ 2 factors and still work.
        let mut tiny = RandomnessPool::new(kp.public(), 0, &mut rng);
        assert_eq!(tiny.len(), 2);
        let c3 = kp.public().encrypt_with_pool(&m, &mut tiny).unwrap();
        assert_eq!(kp.decrypt(&c3).unwrap(), m);
    }

    #[test]
    fn batch_encryption_matches_individual_decryption() {
        let kp = small_keypair(13);
        let mut rng = StdRng::seed_from_u64(14);
        let mut pool = RandomnessPool::new(kp.public(), 4, &mut rng);
        let messages: Vec<BigUint> = (0..20u64).map(BigUint::from_u64).collect();
        let ciphers = kp.public().encrypt_batch(&messages, &mut pool).unwrap();
        assert_eq!(ciphers.len(), messages.len());
        for (c, m) in ciphers.iter().zip(&messages) {
            assert_eq!(&kp.decrypt(c).unwrap(), m);
            assert_eq!(&kp.decrypt_generic(c).unwrap(), m);
        }
        // All ciphertexts distinct even for a constant message stream.
        let same: Vec<BigUint> = (0..10).map(|_| BigUint::from_u64(5)).collect();
        let cs = kp.public().encrypt_batch(&same, &mut pool).unwrap();
        for i in 0..cs.len() {
            for j in (i + 1)..cs.len() {
                assert_ne!(cs[i], cs[j], "blinding repeated at draws {i}/{j}");
            }
        }
    }

    #[test]
    fn pooled_blindings_do_not_cancel_publicly() {
        let kp = small_keypair(17);
        let mut rng = StdRng::seed_from_u64(18);
        // Smallest pool → tightest fold cycle. With m = 0 the ciphertext IS the
        // blinding factor, so a multiplicative relation between draws would be
        // directly visible: the fold walk alone satisfies c₂ = c₀·c₁ mod n² here,
        // which lets a keyless adversary cancel blindings across a batch and read
        // linear relations between plaintexts. The secret per-draw exponent must
        // break the relation.
        let mut pool = RandomnessPool::new(kp.public(), 2, &mut rng);
        let zero = BigUint::zero();
        let c: Vec<PaillierCiphertext> =
            (0..3).map(|_| kp.public().encrypt_with_pool(&zero, &mut pool).unwrap()).collect();
        let n2 = kp.public().n_squared_context().modulus();
        assert_ne!(c[2].0, c[0].0.mul_mod(&c[1].0, n2), "blinding factors cancelled publicly");
        // And the randomized blindings still decrypt correctly.
        for ci in &c {
            assert!(kp.decrypt(ci).unwrap().is_zero());
        }
    }

    #[test]
    fn crt_and_generic_decryption_agree_on_random_messages() {
        let kp = small_keypair(15);
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..10 {
            let m = BigUint::random_below(kp.public().modulus(), &mut rng);
            let c = kp.public().encrypt(&m, &mut rng).unwrap();
            let crt = kp.decrypt(&c).unwrap();
            let generic = kp.decrypt_generic(&c).unwrap();
            assert_eq!(crt, generic);
            assert_eq!(crt, m);
        }
    }
}
