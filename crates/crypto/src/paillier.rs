//! Paillier public-key encryption — the probabilistic baseline of Figure 8.
//!
//! The paper compares F² against "the asymmetric Paillier encryption for the
//! probabilistic encryption" (§5.1) and observes that Paillier is orders of magnitude
//! slower (it "cannot finish within one day when the data size reaches 0.653GB"). To
//! reproduce that comparison without an external crypto crate we implement textbook
//! Paillier on top of [`crate::BigUint`]:
//!
//! * key generation with two random primes `p`, `q` (Miller–Rabin),
//! * encryption `c = (1 + m·n) · rⁿ mod n²` using the standard `g = n + 1` shortcut,
//! * decryption `m = L(c^λ mod n²) · μ mod n`,
//! * the additive homomorphism `E(m₁)·E(m₂) = E(m₁+m₂)`.
//!
//! The default modulus size is 512 bits — small by modern deployment standards but
//! large enough that the *relative* cost of Paillier versus AES-based encryption
//! matches the paper's qualitative result (see DESIGN.md, substitutions table).

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::Result;
use f2_relation::Value;
use rand::Rng;
use std::cmp::Ordering;

/// Default modulus size (bits) used by the benchmark harness.
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// Paillier public key `(n, n²)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
}

/// Paillier ciphertext: an element of `Z*_{n²}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierCiphertext(BigUint);

impl PaillierCiphertext {
    /// Serialize as a big-endian byte string (no fixed width; use
    /// [`PaillierPublicKey::ciphertext_width`] to frame several ciphertexts in one
    /// buffer).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Parse a big-endian byte string produced by
    /// [`PaillierCiphertext::to_bytes_be`] (leading zero bytes are allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        PaillierCiphertext(BigUint::from_bytes_be(bytes))
    }
}

/// A Paillier key pair (public key plus the private `λ`, `μ`).
#[derive(Debug, Clone)]
pub struct PaillierKeyPair {
    public: PaillierPublicKey,
    lambda: BigUint,
    mu: BigUint,
}

impl PaillierPublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Encrypt a message `m < n` with fresh randomness.
    pub fn encrypt(&self, m: &BigUint, rng: &mut impl Rng) -> Result<PaillierCiphertext> {
        if m.cmp_to(&self.n) != Ordering::Less {
            return Err(CryptoError::MessageOutOfRange);
        }
        // r uniformly random in [1, n) and coprime with n (overwhelmingly likely).
        let r = loop {
            let candidate = BigUint::random_below(&self.n, rng);
            if candidate.gcd(&self.n).is_one() {
                break candidate;
            }
        };
        // g^m = (n+1)^m = 1 + m*n (mod n^2)
        let g_m = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let r_n = r.mod_pow(&self.n, &self.n_squared);
        Ok(PaillierCiphertext(g_m.mul_mod(&r_n, &self.n_squared)))
    }

    /// Encrypt a relational [`Value`]: the value's encoding is folded into an integer
    /// smaller than `n`. This is the per-cell operation timed in Figure 8.
    pub fn encrypt_value(&self, value: &Value, rng: &mut impl Rng) -> Result<PaillierCiphertext> {
        let m = fold_value(value, &self.n);
        self.encrypt(&m, rng)
    }

    /// Fixed serialized width (bytes) that can hold any ciphertext under this key:
    /// ciphertexts are elements of `Z_{n²}`, so `⌈bits(n²) / 8⌉` bytes suffice.
    pub fn ciphertext_width(&self) -> usize {
        self.n_squared.bits().div_ceil(8)
    }

    /// Largest number of plaintext bytes that can be embedded losslessly in one
    /// ciphertext: a `0x01`-prefixed chunk of this size is an integer below `2^(8·k)`
    /// with `8·k < bits(n)`, hence strictly smaller than `n`. Returns 0 (rather than
    /// underflowing) for moduli too small to carry any payload byte.
    pub fn plaintext_chunk_size(&self) -> usize {
        (self.n.bits().saturating_sub(1) / 8).saturating_sub(1)
    }

    /// Homomorphic addition: `E(m1) ⊕ E(m2) = E(m1 + m2 mod n)`.
    pub fn add_ciphertexts(
        &self,
        a: &PaillierCiphertext,
        b: &PaillierCiphertext,
    ) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mul_mod(&b.0, &self.n_squared))
    }
}

impl PaillierKeyPair {
    /// Generate a key pair with the given modulus size in bits.
    pub fn generate(modulus_bits: usize, rng: &mut impl Rng) -> Result<Self> {
        if modulus_bits < 16 || !modulus_bits.is_multiple_of(2) {
            return Err(CryptoError::KeyGeneration(format!(
                "modulus size {modulus_bits} must be an even number of bits ≥ 16"
            )));
        }
        let half = modulus_bits / 2;
        let (p, q) = loop {
            let p = BigUint::generate_prime(half, rng);
            let q = BigUint::generate_prime(half, rng);
            if p != q {
                break (p, q);
            }
        };
        let n = p.mul(&q);
        let n_squared = n.mul(&n);
        let one = BigUint::one();
        let lambda = p.sub(&one).lcm(&q.sub(&one));
        // mu = (L(g^lambda mod n^2))^{-1} mod n, with g = n + 1:
        // g^lambda mod n^2 = 1 + lambda*n (mod n^2), so L(..) = lambda mod n.
        let g = n.add(&one);
        let g_lambda = g.mod_pow(&lambda, &n_squared);
        let l = l_function(&g_lambda, &n)?;
        let mu = l
            .mod_inverse(&n)
            .ok_or_else(|| CryptoError::KeyGeneration("L(g^λ) not invertible".into()))?;
        Ok(PaillierKeyPair { public: PaillierPublicKey { n, n_squared }, lambda, mu })
    }

    /// The public key.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypt a ciphertext back to the message `m < n`.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> Result<BigUint> {
        let x = c.0.mod_pow(&self.lambda, &self.public.n_squared);
        let l = l_function(&x, &self.public.n)?;
        Ok(l.mul_mod(&self.mu, &self.public.n))
    }
}

/// Paillier's `L(x) = (x - 1) / n`; fails if `x ≡ 0 (mod n)` never happens for valid input.
fn l_function(x: &BigUint, n: &BigUint) -> Result<BigUint> {
    if x.is_zero() {
        return Err(CryptoError::InvalidCiphertext("L(0) undefined".into()));
    }
    let (q, r) = x.sub(&BigUint::one()).div_rem(n);
    if !r.is_zero() {
        return Err(CryptoError::InvalidCiphertext("x - 1 not divisible by n".into()));
    }
    Ok(q)
}

/// Fold an arbitrary value encoding into an integer `< n`.
fn fold_value(value: &Value, n: &BigUint) -> BigUint {
    let bytes = value.encode();
    BigUint::from_bytes_be(&bytes).rem(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_keypair(seed: u64) -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        PaillierKeyPair::generate(128, &mut rng).unwrap()
    }

    #[test]
    fn keygen_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(PaillierKeyPair::generate(15, &mut rng).is_err());
        assert!(PaillierKeyPair::generate(14, &mut rng).is_err());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = small_keypair(1);
        let mut rng = StdRng::seed_from_u64(2);
        for m in [0u64, 1, 42, 9999, 123_456_789] {
            let msg = BigUint::from_u64(m);
            let c = kp.public().encrypt(&msg, &mut rng).unwrap();
            assert_eq!(kp.decrypt(&c).unwrap(), msg);
        }
    }

    #[test]
    fn encryption_is_probabilistic() {
        let kp = small_keypair(3);
        let mut rng = StdRng::seed_from_u64(4);
        let m = BigUint::from_u64(77);
        let c1 = kp.public().encrypt(&m, &mut rng).unwrap();
        let c2 = kp.public().encrypt(&m, &mut rng).unwrap();
        assert_ne!(c1, c2, "Paillier must be probabilistic");
        assert_eq!(kp.decrypt(&c1).unwrap(), kp.decrypt(&c2).unwrap());
    }

    #[test]
    fn additive_homomorphism() {
        let kp = small_keypair(5);
        let mut rng = StdRng::seed_from_u64(6);
        let a = BigUint::from_u64(1000);
        let b = BigUint::from_u64(2345);
        let ca = kp.public().encrypt(&a, &mut rng).unwrap();
        let cb = kp.public().encrypt(&b, &mut rng).unwrap();
        let sum = kp.public().add_ciphertexts(&ca, &cb);
        assert_eq!(kp.decrypt(&sum).unwrap(), BigUint::from_u64(3345));
    }

    #[test]
    fn message_out_of_range_rejected() {
        let kp = small_keypair(7);
        let mut rng = StdRng::seed_from_u64(8);
        let too_big = kp.public().modulus().clone();
        assert_eq!(
            kp.public().encrypt(&too_big, &mut rng).unwrap_err(),
            CryptoError::MessageOutOfRange
        );
    }

    #[test]
    fn value_encryption() {
        let kp = small_keypair(9);
        let mut rng = StdRng::seed_from_u64(10);
        let c = kp.public().encrypt_value(&Value::text("Hoboken NJ"), &mut rng).unwrap();
        // Decrypts to the folded integer (lossy by design — only timing matters for the
        // baseline), and decryption must succeed.
        assert!(kp.decrypt(&c).is_ok());
    }
}
