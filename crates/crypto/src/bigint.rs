//! Arbitrary-precision unsigned integers.
//!
//! The Paillier baseline of Figure 8 needs modular exponentiation with 512–2048-bit
//! moduli; the offline crate set has no big-integer crate, so this module implements a
//! small, well-tested [`BigUint`]: 64-bit limbs with carry-propagating primitives,
//! schoolbook multiplication, Knuth Algorithm D division, binary GCD (no allocations
//! in the loop), extended-Euclid modular inverse, and Miller–Rabin primality testing.
//! Modular exponentiation dispatches to the Montgomery/REDC engine
//! ([`crate::montgomery`]) whenever the modulus is odd — one division to build the
//! context, zero divisions in the square-and-multiply loop — and falls back to
//! [`BigUint::mod_pow_generic`] for even moduli, so `Value`-level callers never hit
//! the REDC odd-modulus precondition. Everything is cross-checked against `u128`
//! arithmetic by property tests.

use crate::montgomery::Montgomery;
use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Clone, PartialEq, Eq)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (canonical form). Empty == zero.
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Build from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut b = BigUint { limbs: vec![v] };
        b.normalize();
        b
    }

    /// Build from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut b = BigUint { limbs: vec![v as u64, (v >> 64) as u64] };
        b.normalize();
        b
    }

    /// Convert to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 2 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (64 * i);
        }
        Some(v)
    }

    /// Build from little-endian limbs (not necessarily canonical).
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut b = BigUint { limbs };
        b.normalize();
        b
    }

    /// Borrow the little-endian limbs (canonical: no trailing zeros).
    pub(crate) fn limb_slice(&self) -> &[u64] {
        &self.limbs
    }

    /// Bit `i` (little-endian position), `false` beyond the most significant bit.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        limb < self.limbs.len() && (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Build from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            cur |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(cur);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Convert to big-endian bytes (no leading zero bytes; zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let zeros = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..zeros);
        out
    }

    fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::new();
        for (i, &l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{l:x}"));
            } else {
                s.push_str(&format!("{l:016x}"));
            }
        }
        s
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Number of trailing zero bits. Zero has none (returns 0).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry: u64 = 0;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0);
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`. Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        let mut r = self.clone();
        r.sub_in_place(other);
        r
    }

    /// In-place `self -= other` without allocating. Panics if `other > self`.
    fn sub_in_place(&mut self, other: &BigUint) {
        assert!(self.cmp_to(other) != Ordering::Less, "BigUint subtraction underflow");
        let mut borrow: u64 = 0;
        for i in 0..self.limbs.len() {
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        self.normalize();
    }

    /// In-place `self >>= bits` without allocating.
    fn shr_in_place(&mut self, bits: usize) {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            self.limbs.clear();
            return;
        }
        if limb_shift > 0 {
            self.limbs.drain(..limb_shift);
        }
        let bit_shift = (bits % 64) as u32;
        if bit_shift > 0 {
            let len = self.limbs.len();
            for i in 0..len {
                let mut v = self.limbs[i] >> bit_shift;
                if i + 1 < len {
                    v |= self.limbs[i + 1] << (64 - bit_shift);
                }
                self.limbs[i] = v;
            }
        }
        self.normalize();
    }

    /// Three-way comparison.
    pub fn cmp_to(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self * other` (schoolbook, `u128` carry propagation).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + other.limbs.len()] = carry as u64;
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = (bits % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        let mut carry: u64 = 0;
        for &l in &self.limbs {
            if bit_shift == 0 {
                out.push(l);
            } else {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
        }
        if bit_shift != 0 && carry != 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let mut r = self.clone();
        r.shr_in_place(bits);
        r
    }

    /// Quotient and remainder of `self / divisor`. Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_to(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_small(divisor.limbs[0]);
        }
        // Knuth Algorithm D (Hacker's Delight divmnu formulation, 64-bit limbs).
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // ensure u has m + n + 1 limbs
        let base: u128 = 1 << 64;
        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = num / v[n - 1] as u128;
            let mut rhat = num % v[n - 1] as u128;
            while qhat >= base || qhat * v[n - 2] as u128 > (rhat << 64) + u[j + n - 2] as u128 {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= base {
                    break;
                }
            }
            // Multiply and subtract.
            let mut k: i128 = 0;
            for i in 0..n {
                let p = qhat * v[i] as u128;
                let t = u[i + j] as i128 - k - (p as u64) as i128;
                u[i + j] = t as u64;
                k = (p >> 64) as i128 - (t >> 64);
            }
            let t = u[j + n] as i128 - k;
            u[j + n] = t as u64;
            q[j] = qhat as u64;
            if t < 0 {
                // Add back.
                q[j] = q[j].wrapping_sub(1);
                let mut carry: u128 = 0;
                for i in 0..n {
                    let s = u[i + j] as u128 + v[i] as u128 + carry;
                    u[i + j] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint { limbs: u[..n].to_vec() };
        rem.normalize();
        rem.shr_in_place(shift);
        (quotient, rem)
    }

    fn div_rem_small(&self, d: u64) -> (BigUint, BigUint) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        (quotient, BigUint::from_u64(rem as u64))
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `(self * other) mod modulus`.
    pub fn mul_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// `(self + other) mod modulus`.
    pub fn add_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.add(other).rem(modulus)
    }

    /// `self^exponent mod modulus`.
    ///
    /// Odd moduli take the Montgomery/REDC fast path ([`crate::Montgomery`]):
    /// windowed exponentiation entirely in Montgomery form, one conversion in, one
    /// out, zero divisions in the loop. Even moduli (where REDC's `n⁻¹ mod 2^64`
    /// does not exist) automatically fall back to [`BigUint::mod_pow_generic`], so
    /// callers never need to care about the precondition.
    pub fn mod_pow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        crate::obs::mod_pow_calls().inc();
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        match Montgomery::new(modulus) {
            Some(ctx) => ctx.pow(self, exponent),
            None => self.mod_pow_generic(exponent, modulus),
        }
    }

    /// `self^exponent mod modulus` by plain square-and-multiply with a division per
    /// step. Works for every modulus (including even ones, which the Montgomery fast
    /// path cannot handle); [`BigUint::mod_pow`] dispatches here automatically.
    pub fn mod_pow_generic(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(modulus);
        let total_bits = exponent.bits();
        for bit in 0..total_bits {
            if exponent.bit(bit) {
                result = result.mul_mod(&base, modulus);
            }
            if bit + 1 < total_bits {
                base = base.mul_mod(&base, modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD: shift/subtract only, no allocations in
    /// the loop — the Euclid formulation cloned and divided per iteration, which
    /// dominated Paillier key generation).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a.shr_in_place(az);
        b.shr_in_place(bz);
        // Invariant: a and b odd. odd − odd = even, so each round strips at least one
        // bit; all steps are in-place (swap, subtract, shift within the buffer).
        while !a.is_zero() {
            if a.cmp_to(&b) == Ordering::Less {
                std::mem::swap(&mut a, &mut b);
            }
            a.sub_in_place(&b);
            if a.is_zero() {
                break;
            }
            let tz = a.trailing_zeros();
            a.shr_in_place(tz);
        }
        b.shl(common)
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        self.mul(other).div_rem(&self.gcd(other)).0
    }

    /// Modular inverse `self⁻¹ mod modulus`, if it exists (extended Euclid).
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() {
            return None;
        }
        // Extended Euclid with signed coefficients represented as (magnitude, negative?).
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        let mut t0 = (BigUint::zero(), false);
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        let (mag, neg) = t0;
        if neg {
            Some(modulus.sub(&mag.rem(modulus)).rem(modulus))
        } else {
            Some(mag.rem(modulus))
        }
    }

    /// Sample a uniformly random integer with exactly `bits` bits (top bit set).
    pub fn random_bits(bits: usize, rng: &mut impl Rng) -> BigUint {
        assert!(bits > 0);
        let limbs_needed = bits.div_ceil(64);
        let mut limbs = Vec::with_capacity(limbs_needed);
        for _ in 0..limbs_needed {
            limbs.push(rng.next_u64());
        }
        // Mask off excess bits, then set the top bit.
        let top_bits = bits - (limbs_needed - 1) * 64;
        let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
        let last = limbs_needed - 1;
        limbs[last] &= mask;
        limbs[last] |= 1 << (top_bits - 1);
        let mut b = BigUint { limbs };
        b.normalize();
        b
    }

    /// Sample a uniformly random integer in `[1, bound)`. `bound` must be ≥ 2.
    pub fn random_below(bound: &BigUint, rng: &mut impl Rng) -> BigUint {
        assert!(bound.cmp_to(&BigUint::from_u64(2)) != Ordering::Less);
        loop {
            let candidate = BigUint::random_bits(bound.bits(), rng).rem(bound);
            if !candidate.is_zero() {
                return candidate;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime(&self, rounds: usize, rng: &mut impl Rng) -> bool {
        let two = BigUint::from_u64(2);
        let three = BigUint::from_u64(3);
        if self.cmp_to(&two) == Ordering::Less {
            return false;
        }
        if self.cmp_to(&two) == Ordering::Equal || self.cmp_to(&three) == Ordering::Equal {
            return true;
        }
        if self.is_even() {
            return false;
        }
        // Quick trial division by small primes.
        for p in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67] {
            let pb = BigUint::from_u64(p);
            if self.cmp_to(&pb) == Ordering::Equal {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        // n - 1 = 2^s * d
        let s = n_minus_1.trailing_zeros();
        let d = n_minus_1.shr(s);
        // One Montgomery context for all witnesses (self is odd and > 3 here); the
        // witness chain stays in Montgomery form, so residue comparisons are exact.
        let ctx = Montgomery::new(self).expect("odd modulus > 1");
        let one_m = ctx.to_mont(&one);
        let minus_one_m = ctx.to_mont(&n_minus_1);
        'witness: for _ in 0..rounds {
            let a = BigUint::random_below(&n_minus_1, rng);
            if a.is_one() {
                continue;
            }
            let mut x = ctx.pow_mont(&a, &d);
            if x == one_m || x == minus_one_m {
                continue;
            }
            for _ in 0..s - 1 {
                x = ctx.mont_mul(&x, &x);
                if x == minus_one_m {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime with the given bit length.
    pub fn generate_prime(bits: usize, rng: &mut impl Rng) -> BigUint {
        loop {
            let mut candidate = BigUint::random_bits(bits, rng);
            // Force odd.
            if candidate.is_even() {
                candidate = candidate.add(&BigUint::one());
            }
            if candidate.is_probable_prime(16, rng) {
                return candidate;
            }
        }
    }
}

/// Signed subtraction on (magnitude, negative?) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative
        (false, false) => {
            if a.0.cmp_to(&b.0) != Ordering::Less {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0.cmp_to(&a.0) != Ordering::Less {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_conversion() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(BigUint::from_u128(u64::MAX as u128 + 1).to_u128(), Some(u64::MAX as u128 + 1));
        assert_eq!(BigUint::from_u64(300).to_u128(), Some(300));
        let b = BigUint::from_bytes_be(&[1, 0, 0, 0, 0]);
        assert_eq!(b.to_u128(), Some(1u128 << 32));
        assert_eq!(BigUint::from_bytes_be(&b.to_bytes_be()), b);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn bits_and_parity() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from_u64(255).bits(), 8);
        assert_eq!(BigUint::from_u64(256).bits(), 9);
        assert!(BigUint::from_u64(4).is_even());
        assert!(!BigUint::from_u64(5).is_even());
        assert!(BigUint::zero().is_even());
        assert_eq!(BigUint::from_u64(12).trailing_zeros(), 2);
        assert_eq!(BigUint::from_u128(1u128 << 77).trailing_zeros(), 77);
        assert!(BigUint::from_u64(5).bit(0));
        assert!(!BigUint::from_u64(5).bit(1));
        assert!(BigUint::from_u64(5).bit(2));
        assert!(!BigUint::from_u64(5).bit(999));
    }

    #[test]
    fn shifts() {
        let x = BigUint::from_u128(0x1234_5678_9abc_def0_1122_3344);
        assert_eq!(x.shl(4).shr(4), x);
        assert_eq!(x.shl(77).shr(77), x);
        assert_eq!(x.shr(200), BigUint::zero());
        assert_eq!(BigUint::from_u64(1).shl(100).bits(), 101);
    }

    #[test]
    fn display_hex() {
        assert_eq!(BigUint::from_u64(255).to_string(), "0xff");
        assert_eq!(BigUint::zero().to_string(), "0x0");
        assert_eq!(BigUint::from_u128(1u128 << 64).to_string(), "0x10000000000000000");
        assert_eq!(BigUint::from_u128((1u128 << 64) | 0xab).to_string(), "0x100000000000000ab");
    }

    #[test]
    #[should_panic]
    fn subtraction_underflow_panics() {
        let _ = BigUint::from_u64(1).sub(&BigUint::from_u64(2));
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        let _ = BigUint::from_u64(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn known_modpow() {
        let b = BigUint::from_u64(4);
        let e = BigUint::from_u64(13);
        let m = BigUint::from_u64(497);
        assert_eq!(b.mod_pow(&e, &m), BigUint::from_u64(445));
        assert_eq!(b.mod_pow(&BigUint::zero(), &m), BigUint::one());
        assert_eq!(b.mod_pow(&e, &BigUint::one()), BigUint::zero());
        // Even modulus takes the generic fallback and still computes correctly:
        // 4^13 mod 498 = 445? compute: generic path is the oracle here.
        let even = BigUint::from_u64(498);
        assert_eq!(b.mod_pow(&e, &even), b.mod_pow_generic(&e, &even));
    }

    #[test]
    fn gcd_lcm_inverse() {
        let a = BigUint::from_u64(54);
        let b = BigUint::from_u64(24);
        assert_eq!(a.gcd(&b), BigUint::from_u64(6));
        assert_eq!(a.lcm(&b), BigUint::from_u64(216));
        assert_eq!(a.gcd(&BigUint::zero()), a);
        assert_eq!(BigUint::zero().gcd(&b), b);
        // 3 * 7 = 21 ≡ 1 mod 20
        assert_eq!(
            BigUint::from_u64(3).mod_inverse(&BigUint::from_u64(20)),
            Some(BigUint::from_u64(7))
        );
        // 4 has no inverse mod 20.
        assert_eq!(BigUint::from_u64(4).mod_inverse(&BigUint::from_u64(20)), None);
    }

    #[test]
    fn primality_of_known_numbers() {
        let mut rng = StdRng::seed_from_u64(7);
        for p in [2u64, 3, 5, 7, 11, 101, 7919, 104729, 2147483647] {
            assert!(BigUint::from_u64(p).is_probable_prime(16, &mut rng), "{p} should be prime");
        }
        for c in [1u64, 4, 9, 100, 7917, 104730, 2147483647 * 3] {
            assert!(
                !BigUint::from_u64(c).is_probable_prime(16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn prime_generation_produces_primes_of_requested_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = BigUint::generate_prime(96, &mut rng);
        assert_eq!(p.bits(), 96);
        assert!(p.is_probable_prime(16, &mut rng));
    }

    #[test]
    fn large_division_regression() {
        // A case exercising the "add back" branch probability-wise: divide a 256-bit
        // number by a 128-bit one and verify q * d + r == n and r < d.
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let n = BigUint::random_bits(256, &mut rng);
            let d = BigUint::random_bits(128, &mut rng);
            let (q, r) = n.div_rem(&d);
            assert!(r.cmp_to(&d) == Ordering::Less);
            assert_eq!(q.mul(&d).add(&r), n);
        }
    }

    proptest! {
        #[test]
        fn add_matches_u128(a in 0u128..(1u128<<100), b in 0u128..(1u128<<100)) {
            let r = BigUint::from_u128(a).add(&BigUint::from_u128(b));
            prop_assert_eq!(r.to_u128().unwrap(), a + b);
        }

        #[test]
        fn sub_matches_u128(a in 0u128..(1u128<<100), b in 0u128..(1u128<<100)) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let r = BigUint::from_u128(hi).sub(&BigUint::from_u128(lo));
            prop_assert_eq!(r.to_u128().unwrap(), hi - lo);
        }

        #[test]
        fn mul_matches_u128(a in 0u128..(1u128<<63), b in 0u128..(1u128<<63)) {
            let r = BigUint::from_u128(a).mul(&BigUint::from_u128(b));
            prop_assert_eq!(r.to_u128().unwrap(), a * b);
        }

        #[test]
        fn div_rem_matches_u128(a in 0u128..u128::MAX, b in 1u128..u128::MAX) {
            let (q, r) = BigUint::from_u128(a).div_rem(&BigUint::from_u128(b));
            prop_assert_eq!(q.to_u128().unwrap(), a / b);
            prop_assert_eq!(r.to_u128().unwrap(), a % b);
        }

        #[test]
        fn div_rem_reconstructs(a_bits in 1usize..300, b_bits in 1usize..300, seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = BigUint::random_bits(a_bits, &mut rng);
            let b = BigUint::random_bits(b_bits, &mut rng);
            let (q, r) = a.div_rem(&b);
            prop_assert!(r.cmp_to(&b) == Ordering::Less);
            prop_assert_eq!(q.mul(&b).add(&r), a);
        }

        #[test]
        fn modpow_matches_u128(b in 0u64..1000, e in 0u64..1000, m in 2u64..100_000) {
            let expected = {
                let mut acc: u128 = 1;
                let mut base = b as u128 % m as u128;
                let mut exp = e;
                while exp > 0 {
                    if exp & 1 == 1 { acc = acc * base % m as u128; }
                    base = base * base % m as u128;
                    exp >>= 1;
                }
                acc
            };
            let r = BigUint::from_u64(b).mod_pow(&BigUint::from_u64(e), &BigUint::from_u64(m));
            prop_assert_eq!(r.to_u128().unwrap(), expected);
        }

        #[test]
        fn gcd_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
            let expected = {
                let (mut x, mut y) = (a, b);
                while y != 0 {
                    let r = x % y;
                    x = y;
                    y = r;
                }
                x
            };
            let r = BigUint::from_u128(a).gcd(&BigUint::from_u128(b));
            prop_assert_eq!(r.to_u128().unwrap(), expected);
        }

        #[test]
        fn mod_inverse_is_inverse(a in 1u64..100_000, m in 2u64..100_000) {
            let ab = BigUint::from_u64(a);
            let mb = BigUint::from_u64(m);
            match ab.mod_inverse(&mb) {
                Some(inv) => {
                    prop_assert_eq!(ab.mul_mod(&inv, &mb), BigUint::one().rem(&mb));
                }
                None => {
                    // gcd must be > 1
                    prop_assert!(!ab.gcd(&mb).is_one());
                }
            }
        }
    }
}
