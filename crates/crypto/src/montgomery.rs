//! Montgomery-form modular arithmetic (REDC).
//!
//! A [`Montgomery`] context precomputes everything modular exponentiation needs so
//! that the hot loop contains **zero divisions**: with `R = 2^(64·L)` (`L` = limb
//! count of the modulus `n`), numbers are mapped into *Montgomery form* `x̃ = x·R mod
//! n`, where modular multiplication becomes `REDC(x̃·ỹ) = x̃·ỹ·R⁻¹ mod n` — and REDC
//! is carried out with shifts, multiplies and adds only. The context stores
//!
//! * `n0inv = −n⁻¹ mod 2^64` (one Newton iteration chain on the lowest limb),
//! * `R mod n` (the Montgomery form of 1) and `R² mod n` (the conversion factor:
//!   `to_mont(x) = REDC(x · R²)`),
//!
//! which cost two divisions at construction; every subsequent `mul`/`square`/`pow`
//! runs division-free. [`Montgomery::pow`] uses windowed (2^k-ary) exponentiation
//! entirely in Montgomery form — one conversion in, one conversion out.
//!
//! # Odd-modulus precondition
//!
//! REDC requires `gcd(n, R) = 1`, i.e. an **odd** modulus: `n0inv` is the inverse of
//! `n` modulo a power of two, which exists iff `n` is odd. [`Montgomery::new`]
//! therefore returns `None` for even (or trivial) moduli; `BigUint::mod_pow`
//! dispatches to the division-based `mod_pow_generic` in that case, so callers never
//! observe the precondition. Paillier moduli (`n`, `n²`, `p²`, `q²` — products of odd
//! primes) are always odd, which is why the entire public-key hot path runs here.

use crate::bigint::BigUint;
use std::cmp::Ordering;

/// Precomputed context for modular arithmetic over a fixed odd modulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Montgomery {
    /// The (odd) modulus `n`.
    n: BigUint,
    /// Limb count `L` of the modulus; every internal buffer is `L` limbs wide.
    limbs: usize,
    /// `−n⁻¹ mod 2^64`.
    n0inv: u64,
    /// `R mod n` — the Montgomery form of 1 (fixed width `L`).
    r1: Vec<u64>,
    /// `R² mod n` — conversion factor into Montgomery form (fixed width `L`).
    r2: Vec<u64>,
}

impl Montgomery {
    /// Build a context for the odd modulus `n`. Returns `None` if `n` is even or
    /// `n ≤ 1` (REDC's `n⁻¹ mod 2^64` only exists for odd `n`).
    pub fn new(n: &BigUint) -> Option<Self> {
        if n.is_even() || n.is_zero() || n.is_one() {
            return None;
        }
        let limbs = n.limb_slice().len();
        // Newton–Hensel lifting of n₀⁻¹ mod 2^64: for odd n₀, x ← x·(2 − n₀·x)
        // doubles the number of correct low bits per step; seeding with n₀ itself
        // gives 3 correct bits (n₀² ≡ 1 mod 8), so 5 steps reach 96 ≥ 64 bits.
        let n0 = n.limb_slice()[0];
        let mut inv: u64 = n0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();
        let r1 = fixed(&BigUint::one().shl(64 * limbs).rem(n), limbs);
        let r2 = fixed(&BigUint::one().shl(128 * limbs).rem(n), limbs);
        Some(Montgomery { n: n.clone(), limbs, n0inv, r1, r2 })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Montgomery form of 1 (`R mod n`).
    pub fn one_mont(&self) -> BigUint {
        BigUint::from_limbs(self.r1.clone())
    }

    /// Map `x` into Montgomery form: `x·R mod n`. `x` is reduced mod `n` first.
    pub fn to_mont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(&x.rem(&self.n), &BigUint::from_limbs(self.r2.clone()))
    }

    /// Map a Montgomery-form value back to the ordinary representation:
    /// `x̃·R⁻¹ mod n`.
    pub fn from_mont(&self, x: &BigUint) -> BigUint {
        let l = self.limbs;
        let mut t = vec![0u64; 2 * l + 1];
        let xf = fixed(x, l);
        t[..l].copy_from_slice(&xf);
        let mut out = vec![0u64; l];
        self.reduce_into(&mut t, &mut out);
        BigUint::from_limbs(out)
    }

    /// One Montgomery multiplication: `REDC(a·b) = a·b·R⁻¹ mod n`.
    ///
    /// With both operands in Montgomery form this is the modular product (still in
    /// Montgomery form). With exactly **one** operand in Montgomery form the result
    /// is the plain modular product `a·b mod n` in ordinary representation — the
    /// trick Paillier encryption uses to apply a precomputed Montgomery-form
    /// blinding factor to a plain message with a single multiplication and no
    /// conversions.
    ///
    /// **Precondition:** both operands must already be reduced (`< n`). REDC's
    /// single conditional subtraction only guarantees a canonical result for
    /// `a·b < n·R`; an unreduced operand that still fits the modulus width would
    /// silently produce a residue ≥ n. (Use [`Montgomery::to_mont`], which reduces
    /// its input, or reduce with `rem` first.)
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a.cmp_to(&self.n) == Ordering::Less, "mont_mul operand not reduced mod n");
        debug_assert!(b.cmp_to(&self.n) == Ordering::Less, "mont_mul operand not reduced mod n");
        let l = self.limbs;
        let af = fixed(a, l);
        let bf = fixed(b, l);
        let mut t = vec![0u64; 2 * l + 1];
        let mut out = vec![0u64; l];
        self.mul_into(&af, &bf, &mut out, &mut t);
        BigUint::from_limbs(out)
    }

    /// `base^exp mod n` in ordinary representation (windowed, Montgomery inside).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.from_mont(&self.pow_mont(base, exp))
    }

    /// `base^exp mod n`, returned **in Montgomery form** (`base` is ordinary).
    ///
    /// Windowed 2^k-ary left-to-right exponentiation: the exponent is consumed in
    /// `w`-bit windows (w grows with exponent size up to 6), so per window there are
    /// `w` squarings and at most one table multiplication. The whole walk stays in
    /// Montgomery form and the loop body allocates nothing (ping-pong scratch
    /// buffers).
    pub fn pow_mont(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.pow_mont_of(&self.to_mont(base), exp)
    }

    /// `base^exp mod n` where `base` is **already in Montgomery form**; the result
    /// stays in Montgomery form (saves the input conversion when the base is a
    /// stored Montgomery-domain value, e.g. a pooled Paillier blinding factor).
    /// Like [`Montgomery::mont_mul`], the base must be reduced (`< n`).
    pub fn pow_mont_of(&self, base_mont: &BigUint, exp: &BigUint) -> BigUint {
        debug_assert!(
            base_mont.cmp_to(&self.n) == Ordering::Less,
            "pow_mont_of base not reduced mod n"
        );
        let l = self.limbs;
        let eb = exp.bits();
        if eb == 0 {
            return self.one_mont();
        }
        let w = window_bits(eb);
        // Table of Montgomery-form powers: table[d] = base^d · R mod n.
        let base_m = fixed(base_mont, l);
        let mut t = vec![0u64; 2 * l + 1];
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(1 << w);
        table.push(self.r1.clone());
        table.push(base_m);
        for d in 2..(1usize << w) {
            let mut out = vec![0u64; l];
            self.mul_into(&table[d - 1], &table[1], &mut out, &mut t);
            table.push(out);
        }
        let windows = eb.div_ceil(w);
        let mut acc = table[exp_window(exp, (windows - 1) * w, w)].clone();
        let mut tmp = vec![0u64; l];
        for win in (0..windows - 1).rev() {
            for _ in 0..w {
                self.mul_into(&acc, &acc, &mut tmp, &mut t);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let d = exp_window(exp, win * w, w);
            if d != 0 {
                self.mul_into(&acc, &table[d], &mut tmp, &mut t);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        BigUint::from_limbs(acc)
    }

    /// Schoolbook product `a·b` into `t`, then Montgomery reduction into `out`.
    /// `a`, `b`, `out` are `L` limbs; `t` is the `2L+1`-limb scratch buffer.
    fn mul_into(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        let l = self.limbs;
        t.fill(0);
        for i in 0..l {
            let ai = a[i] as u128;
            if ai == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..l {
                let cur = t[i + j] as u128 + ai * b[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            t[i + l] = carry as u64;
        }
        self.reduce_into(t, out);
    }

    /// Montgomery reduction (REDC): given `t < n·R` (2L+1 limbs), write
    /// `t·R⁻¹ mod n` into `out` (L limbs). Destroys `t`.
    fn reduce_into(&self, t: &mut [u64], out: &mut [u64]) {
        let l = self.limbs;
        let n = self.n.limb_slice();
        for i in 0..l {
            // m·n cancels the lowest live limb: (t[i] + m·n₀) ≡ 0 mod 2^64.
            let m = t[i].wrapping_mul(self.n0inv) as u128;
            let mut carry: u128 = 0;
            for j in 0..l {
                let cur = t[i + j] as u128 + m * n[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + l;
            while carry != 0 {
                let cur = t[k] as u128 + carry;
                t[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        // t/R lives in t[l..2l] with a possible overflow limb t[2l]; the value is
        // < 2n, so at most one subtraction of n brings it into range.
        let needs_sub = t[2 * l] != 0 || cmp_fixed(&t[l..2 * l], n) != Ordering::Less;
        if needs_sub {
            let mut borrow: u64 = 0;
            for j in 0..l {
                let nj = *n.get(j).unwrap_or(&0);
                let (d1, b1) = t[l + j].overflowing_sub(nj);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        } else {
            out.copy_from_slice(&t[l..2 * l]);
        }
    }
}

/// Pad (or reduce-and-pad) a canonical `BigUint` to exactly `l` limbs.
///
/// Callers guarantee `x < n` (so `x` has at most `l` limbs); the debug assertion
/// catches misuse.
fn fixed(x: &BigUint, l: usize) -> Vec<u64> {
    let src = x.limb_slice();
    debug_assert!(src.len() <= l, "operand wider than the modulus");
    let mut out = vec![0u64; l];
    out[..src.len()].copy_from_slice(src);
    out
}

/// Compare two fixed-width limb slices (`a` exactly as wide as `b` is canonical —
/// `b` may be shorter; missing high limbs of `b` read as zero).
fn cmp_fixed(a: &[u64], b: &[u64]) -> Ordering {
    for i in (0..a.len()).rev() {
        let bv = *b.get(i).unwrap_or(&0);
        match a[i].cmp(&bv) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Window width for a given exponent bit length (standard k-ary thresholds).
fn window_bits(exp_bits: usize) -> usize {
    match exp_bits {
        0..=24 => 1,
        25..=79 => 3,
        80..=239 => 4,
        240..=671 => 5,
        _ => 6,
    }
}

/// Extract exponent bits `[pos, pos + width)` as a little-endian window value.
fn exp_window(exp: &BigUint, pos: usize, width: usize) -> usize {
    let mut v = 0usize;
    for i in 0..width {
        if exp.bit(pos + i) {
            v |= 1 << i;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(Montgomery::new(&BigUint::from_u64(16)).is_none());
        assert!(Montgomery::new(&BigUint::zero()).is_none());
        assert!(Montgomery::new(&BigUint::one()).is_none());
        assert!(Montgomery::new(&BigUint::from_u64(15)).is_some());
    }

    #[test]
    fn roundtrip_through_montgomery_form() {
        let n = BigUint::from_u64(1_000_003);
        let ctx = Montgomery::new(&n).unwrap();
        for v in [0u64, 1, 2, 999_999, 1_000_002, u64::MAX] {
            let x = BigUint::from_u64(v).rem(&n);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
        assert_eq!(ctx.from_mont(&ctx.one_mont()), BigUint::one());
    }

    #[test]
    fn mont_mul_matches_mul_mod() {
        let n = BigUint::from_u128(0xffff_ffff_ffff_ffff_ffff_ffff_ffff_fff1);
        let ctx = Montgomery::new(&n).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let a = BigUint::random_below(&n, &mut rng);
            let b = BigUint::random_below(&n, &mut rng);
            let am = ctx.to_mont(&a);
            let bm = ctx.to_mont(&b);
            assert_eq!(ctx.from_mont(&ctx.mont_mul(&am, &bm)), a.mul_mod(&b, &n));
            // Mixed-domain product: one Montgomery operand, plain result.
            assert_eq!(ctx.mont_mul(&a, &bm), a.mul_mod(&b, &n));
        }
    }

    #[test]
    fn pow_matches_generic_across_sizes() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [8usize, 63, 64, 65, 127, 128, 129, 256, 521] {
            let mut n = BigUint::random_bits(bits, &mut rng);
            if n.is_even() {
                n = n.add(&BigUint::one());
            }
            if n.is_one() {
                continue;
            }
            let ctx = Montgomery::new(&n).unwrap();
            let base = BigUint::random_bits(bits, &mut rng);
            let exp = BigUint::random_bits(bits.min(96), &mut rng);
            assert_eq!(ctx.pow(&base, &exp), base.mod_pow_generic(&exp, &n), "bits={bits}");
        }
    }

    #[test]
    fn pow_edge_cases() {
        let n = BigUint::from_u64(101);
        let ctx = Montgomery::new(&n).unwrap();
        // x^0 = 1, 0^e = 0, 1^e = 1, base ≥ n is reduced first.
        assert_eq!(ctx.pow(&BigUint::from_u64(7), &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow(&BigUint::zero(), &BigUint::from_u64(9)), BigUint::zero());
        assert_eq!(ctx.pow(&BigUint::one(), &BigUint::from_u64(1000)), BigUint::one());
        assert_eq!(ctx.pow(&BigUint::from_u64(108), &BigUint::from_u64(2)), BigUint::from_u64(49));
    }
}
