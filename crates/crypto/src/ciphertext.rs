//! Ciphertext framing.
//!
//! A probabilistic ciphertext is the pair `⟨r, F_k(r) ⊕ p⟩` (§2.3). We frame it as a
//! single byte string `r ‖ body` so that it can be stored in a relational cell
//! ([`f2_relation::Value::Bytes`]-compatible) and shipped to the server as opaque data.

use crate::error::CryptoError;
use crate::Result;
use bytes::Bytes;

/// Length of the random string `r` (the paper's security parameter λ in bytes).
pub const NONCE_LEN: usize = 16;

/// A framed probabilistic ciphertext `⟨r, F_k(r) ⊕ p⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ciphertext {
    nonce: [u8; NONCE_LEN],
    body: Vec<u8>,
}

impl Ciphertext {
    /// Assemble a ciphertext from its parts.
    pub fn new(nonce: [u8; NONCE_LEN], body: Vec<u8>) -> Self {
        Ciphertext { nonce, body }
    }

    /// The random string `r`.
    pub fn nonce(&self) -> &[u8; NONCE_LEN] {
        &self.nonce
    }

    /// The masked plaintext `F_k(r) ⊕ p`.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serialize to a flat byte string `r ‖ body`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(NONCE_LEN + self.body.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.body);
        out
    }

    /// Serialize into a [`Bytes`] buffer suitable for a relational cell.
    pub fn to_cell(&self) -> Bytes {
        Bytes::from(self.to_bytes())
    }

    /// Parse a flat byte string back into a ciphertext.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < NONCE_LEN {
            return Err(CryptoError::InvalidCiphertext(format!(
                "ciphertext of {} bytes is shorter than the {NONCE_LEN}-byte nonce",
                bytes.len()
            )));
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&bytes[..NONCE_LEN]);
        Ok(Ciphertext { nonce, body: bytes[NONCE_LEN..].to_vec() })
    }

    /// Total serialized length.
    pub fn len(&self) -> usize {
        NONCE_LEN + self.body.len()
    }

    /// A ciphertext is never empty (it always carries a nonce).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = Ciphertext::new([7u8; 16], vec![1, 2, 3]);
        let bytes = c.to_bytes();
        assert_eq!(bytes.len(), 19);
        assert_eq!(c.len(), 19);
        assert!(!c.is_empty());
        let back = Ciphertext::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.nonce(), &[7u8; 16]);
        assert_eq!(back.body(), &[1, 2, 3]);
    }

    #[test]
    fn empty_body_is_allowed() {
        let c = Ciphertext::new([0u8; 16], vec![]);
        let back = Ciphertext::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.body(), &[] as &[u8]);
    }

    #[test]
    fn short_input_rejected() {
        assert!(Ciphertext::from_bytes(&[0u8; 15]).is_err());
        assert!(Ciphertext::from_bytes(&[]).is_err());
    }

    #[test]
    fn cell_conversion() {
        let c = Ciphertext::new([1u8; 16], vec![9, 9]);
        let cell = c.to_cell();
        assert_eq!(cell.len(), 18);
        let back = Ciphertext::from_bytes(&cell).unwrap();
        assert_eq!(back, c);
    }
}
