//! Cached telemetry handles for the crypto hot paths.
//!
//! Each accessor registers its counter on the process-wide `f2_obs` registry once
//! (behind a `OnceLock`) and hands back the cached handle, so instrumentation at
//! a cipher call site costs one static load plus one relaxed atomic add — and
//! only the load when the registry is disabled. Counts are batched per *call*
//! (e.g. one add per keystream, not per AES block) to keep the cipher loops
//! untouched.
//!
//! Nothing here reads or stores secret material: these are operation tallies,
//! observed by exporters, never consumed by the cipher.

use f2_obs::Counter;
use std::sync::OnceLock;

/// AES-128 block encryptions, batched per keystream/mask call.
pub(crate) fn aes_blocks() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_crypto_aes_blocks_total",
            "AES-128 block encryptions performed by the PRF keystream.",
            &[],
        )
    })
}

/// Modular exponentiations dispatched through `BigUint::mod_pow`.
pub(crate) fn mod_pow_calls() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_crypto_mod_pow_total",
            "Modular exponentiations dispatched through BigUint::mod_pow.",
            &[],
        )
    })
}

/// Blinding factors drawn from a Paillier `RandomnessPool`.
pub(crate) fn pool_draws() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_crypto_pool_draws_total",
            "Blinding factors drawn from Paillier randomness pools.",
            &[],
        )
    })
}
