//! Error type for cryptographic operations.

use std::fmt;

/// Errors raised by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A ciphertext was malformed (wrong length, bad framing, …).
    InvalidCiphertext(String),
    /// Decryption produced bytes that do not decode to a valid plaintext value.
    DecryptionFailed,
    /// A key had the wrong length or structure.
    InvalidKey(String),
    /// The requested security parameter is not supported.
    UnsupportedParameter(String),
    /// A Paillier message was out of range (must be smaller than the modulus).
    MessageOutOfRange,
    /// Paillier key generation failed (e.g. could not find primes).
    KeyGeneration(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidCiphertext(msg) => write!(f, "invalid ciphertext: {msg}"),
            CryptoError::DecryptionFailed => write!(f, "decryption failed"),
            CryptoError::InvalidKey(msg) => write!(f, "invalid key: {msg}"),
            CryptoError::UnsupportedParameter(msg) => {
                write!(f, "unsupported security parameter: {msg}")
            }
            CryptoError::MessageOutOfRange => {
                write!(f, "Paillier message must be smaller than the modulus")
            }
            CryptoError::KeyGeneration(msg) => write!(f, "key generation failed: {msg}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CryptoError::DecryptionFailed.to_string().contains("decryption"));
        assert!(CryptoError::InvalidKey("short".into()).to_string().contains("short"));
        assert!(CryptoError::MessageOutOfRange.to_string().contains("modulus"));
    }
}
