//! Key generation and management.
//!
//! `KeyGen(λ)` of the paper (§2.3) generates the secret key held by the data owner.
//! F² encrypts every attribute independently, so we derive one sub-key per attribute
//! from a single master key; the derivation is itself a PRF evaluation, so sub-keys are
//! computationally independent and only the master key needs to be stored.

use crate::aes::Aes128;
use crate::error::CryptoError;
use crate::Result;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// The SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function. Shared by
/// [`entropy_seed`] and the engine's per-chunk seed derivation so the constants live
/// in exactly one place.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draw a 64-bit seed from ambient entropy (wall clock, monotonic process counter,
/// address-space layout), mixed through [`splitmix64`].
///
/// The vendored offline `rand` shim has no OS entropy source, so this is the
/// workspace-wide `from_entropy` substitute: good enough to make two runs of the same
/// binary draw different nonce streams, with no cryptographic claim (F²'s security
/// rests on its AES-based PRF, not on seed secrecy). Successive calls never return the
/// same seed, even within one clock tick.
pub fn entropy_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xdead_beef);
    let tick = COUNTER.fetch_add(1, Ordering::Relaxed);
    // The address of a per-process static adds ASLR entropy across processes.
    let aslr = &COUNTER as *const AtomicU64 as u64;
    splitmix64(nanos ^ aslr.rotate_left(32) ^ tick.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A 128-bit symmetric secret key.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey([u8; 16]);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecretKey(***)")
    }
}

impl SecretKey {
    /// `KeyGen(λ)`: sample a fresh key. Only λ = 128 is supported.
    pub fn generate(lambda: usize, rng: &mut impl Rng) -> Result<Self> {
        if lambda != 128 {
            return Err(CryptoError::UnsupportedParameter(format!(
                "security parameter {lambda} (only 128 is supported)"
            )));
        }
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        Ok(SecretKey(bytes))
    }

    /// Construct a key from raw bytes (e.g. loaded from the owner's key store).
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        SecretKey(bytes)
    }

    /// Borrow the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

/// The data owner's master key, from which per-attribute sub-keys are derived.
#[derive(Clone, PartialEq, Eq)]
pub struct MasterKey {
    root: SecretKey,
}

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MasterKey(***)")
    }
}

impl MasterKey {
    /// Generate a fresh master key.
    pub fn generate(rng: &mut impl Rng) -> Self {
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        MasterKey { root: SecretKey(bytes) }
    }

    /// Derive a master key from ambient entropy (see [`entropy_seed`]) instead of a
    /// caller-supplied RNG or a fixed seed.
    pub fn from_entropy() -> Self {
        Self::from_seed(entropy_seed())
    }

    /// Deterministically derive a master key from a 64-bit seed. Intended for tests and
    /// reproducible benchmarks only — real deployments should use [`MasterKey::generate`].
    pub fn from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        bytes[8..].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
        MasterKey { root: SecretKey(bytes) }
    }

    /// Derive the sub-key for domain `domain` and index `index`
    /// (e.g. domain 0 = per-attribute probabilistic keys, domain 1 = deterministic
    /// baseline keys).
    pub fn derive(&self, domain: u8, index: u64) -> SecretKey {
        let aes = Aes128::new(self.root.as_bytes());
        let mut block = [0u8; 16];
        block[0] = domain;
        block[8..16].copy_from_slice(&index.to_le_bytes());
        aes.encrypt_block(&mut block);
        SecretKey(block)
    }

    /// Sub-key for probabilistic encryption of attribute `attr`.
    pub fn attribute_key(&self, attr: usize) -> SecretKey {
        self.derive(0, attr as u64)
    }

    /// Sub-key for the deterministic (AES baseline) encryption of attribute `attr`.
    pub fn deterministic_key(&self, attr: usize) -> SecretKey {
        self.derive(1, attr as u64)
    }
}

/// Bundle of key material the data owner keeps private for one outsourced table.
#[derive(Debug, Clone)]
pub struct KeyMaterial {
    /// The master key.
    pub master: MasterKey,
    /// Number of attributes of the outsourced table.
    pub arity: usize,
}

impl KeyMaterial {
    /// Create key material for a table with `arity` attributes.
    pub fn new(master: MasterKey, arity: usize) -> Self {
        KeyMaterial { master, arity }
    }

    /// All per-attribute probabilistic sub-keys, in attribute order.
    pub fn attribute_keys(&self) -> Vec<SecretKey> {
        (0..self.arity).map(|a| self.master.attribute_key(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keygen_rejects_unsupported_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(SecretKey::generate(256, &mut rng).is_err());
        assert!(SecretKey::generate(128, &mut rng).is_ok());
    }

    #[test]
    fn derived_keys_are_distinct_and_deterministic() {
        let mk = MasterKey::from_seed(99);
        let k0 = mk.attribute_key(0);
        let k1 = mk.attribute_key(1);
        let d0 = mk.deterministic_key(0);
        assert_ne!(k0.as_bytes(), k1.as_bytes());
        assert_ne!(k0.as_bytes(), d0.as_bytes());
        // Deterministic re-derivation.
        assert_eq!(k0.as_bytes(), mk.attribute_key(0).as_bytes());
        // Different master keys derive different sub-keys.
        let other = MasterKey::from_seed(100);
        assert_ne!(k0.as_bytes(), other.attribute_key(0).as_bytes());
    }

    #[test]
    fn debug_redacts_key_material() {
        let mk = MasterKey::from_seed(7);
        assert_eq!(format!("{:?}", mk), "MasterKey(***)");
        assert_eq!(format!("{:?}", mk.attribute_key(3)), "SecretKey(***)");
    }

    #[test]
    fn key_material_enumerates_attribute_keys() {
        let km = KeyMaterial::new(MasterKey::from_seed(5), 4);
        let keys = km.attribute_keys();
        assert_eq!(keys.len(), 4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(keys[i].as_bytes(), keys[j].as_bytes());
            }
        }
    }

    #[test]
    fn entropy_seeds_are_distinct() {
        // Two draws in the same nanosecond must still differ (monotonic counter).
        let a = entropy_seed();
        let b = entropy_seed();
        assert_ne!(a, b);
        let ka = MasterKey::from_entropy();
        let kb = MasterKey::from_entropy();
        assert_ne!(ka.root.as_bytes(), kb.root.as_bytes());
    }

    #[test]
    fn generated_keys_differ() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = MasterKey::generate(&mut rng);
        let b = MasterKey::generate(&mut rng);
        assert_ne!(a.root.as_bytes(), b.root.as_bytes());
    }
}
