//! The lint must run clean over the live workspace modulo the committed baseline —
//! the same invariant CI enforces with `cargo run -p f2-lint -- --check` — and a
//! violation seeded into a watched module must surface with a file:line diagnostic.

use std::path::Path;

use f2_lint::{analyze, analyze_source, find_workspace_root, Baseline, Registry, REGISTRY_PATH};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("inside the workspace")
}

#[test]
fn workspace_is_clean_modulo_the_committed_baseline() {
    let root = workspace_root();
    let analysis = analyze(&root).expect("workspace analyzes");
    assert!(analysis.files_scanned > 40, "walked only {} files", analysis.files_scanned);

    let baseline_text =
        std::fs::read_to_string(root.join("LINT_baseline.json")).expect("committed baseline");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let (_, fresh) = baseline.partition(&analysis.findings);
    let rendered: Vec<String> =
        fresh.iter().map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message)).collect();
    assert!(
        rendered.is_empty(),
        "new lint findings (fix them or run `cargo run -p f2-lint -- --update-baseline`):\n{}",
        rendered.join("\n")
    );
}

#[test]
fn seeding_a_violation_into_a_watched_module_is_caught_with_file_and_line() {
    let root = workspace_root();
    let wire = root.join("crates/io/src/wire.rs");
    let source = std::fs::read_to_string(&wire).expect("wire.rs readable");
    let registry_text =
        std::fs::read_to_string(root.join(REGISTRY_PATH)).expect("registry readable");
    let registry = Registry::parse(&registry_text).expect("registry parses");

    let seeded = format!("{source}\npub fn smuggled(buf: &[u8]) -> u8 {{\n    buf[0]\n}}\n");
    let result = analyze_source("crates/io/src/wire.rs", &seeded, &registry);
    // The trailing newline of `source`, a blank line, the `fn` line, then the body
    // line the indexing finding anchors on.
    let expected_line = u32::try_from(source.lines().count() + 3).expect("line fits");
    let hit = result
        .findings
        .iter()
        .find(|f| f.rule == "slice-index" && f.function == "smuggled")
        .unwrap_or_else(|| panic!("seeded violation not caught: {:?}", result.findings));
    assert_eq!(hit.file, "crates/io/src/wire.rs");
    assert_eq!(hit.line, expected_line, "diagnostic points at the seeded line");

    // The unmodified module stays clean: the catch above is not baseline noise.
    let clean = analyze_source("crates/io/src/wire.rs", &source, &registry);
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
}
