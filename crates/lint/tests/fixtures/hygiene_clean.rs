//! lint: planning — fixture: clean planning code.
//! lint: chunk-seed-authority — this fixture is allowed to derive per-chunk seeds.

pub fn chunk_key(stream_seed: u64, index: u64) -> u64 {
    chunk_seed(stream_seed, index)
}

fn chunk_seed(seed: u64, index: u64) -> u64 {
    seed.rotate_left(17) ^ index
}

pub struct Scheme {
    seed: u64,
}

impl Scheme {
    pub fn reseeded(&self, seed: u64) -> Scheme {
        Scheme { seed }
    }
}
