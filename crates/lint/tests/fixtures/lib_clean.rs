//! Fixture: a crate root with the mandatory deny-by-default attributes.

#![forbid(unsafe_code)]

pub fn noop() {}
