//! lint: untrusted-input — fixture: every untrusted-path rule must fire here.

pub fn parse(buf: &[u8]) -> u64 {
    let first = buf[0]; // slice-index
    let n = u64::from(first);
    let len = buf.len() as u32; // truncating-cast
    let mut sizes = Vec::with_capacity(n as usize); // alloc-before-cap (+ truncating-cast)
    sizes.push(len);
    let head = buf.first().unwrap(); // no-unwrap
    if *head == 0 {
        panic!("zero header"); // no-panic
    }
    n
}

pub fn parse_more(buf: &[u8]) -> u8 {
    let b = buf.get(1).expect("needs two bytes"); // no-unwrap (expect form)
    match b {
        0 => unreachable!(), // no-panic
        1 => todo!(),        // no-panic
        _ => *b,
    }
}
