//! Fixture: constant-time rules fire only inside registry-listed functions.

pub fn mod_exp(base: u64, exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    let table = [1u64, 2, 4, 8];
    if exp & 1 == 1 {
        // secret-branch: control flow on the secret exponent
        acc = acc.wrapping_mul(base);
    }
    let w = (exp % 4) as usize; // secret-divmod, and `w` becomes tainted
    acc = acc.wrapping_mul(table[w]); // secret-index through the tainted index
    acc
}

pub fn public_math(x: u64, m: u64) -> u64 {
    // The same shapes outside the registry are silent.
    if x & 1 == 1 {
        x % m
    } else {
        x / 2
    }
}
