//! lint: planning — fixture: planning-layer hygiene rules.

thread_local! {
    static CACHE: std::cell::RefCell<Vec<u64>> = std::cell::RefCell::new(Vec::new());
}

pub fn chunk_key(stream_seed: u64, index: u64) -> u64 {
    chunk_seed(stream_seed, index) // chunk-seed-discipline: not an authority file
}

fn chunk_seed(seed: u64, index: u64) -> u64 {
    // The definition itself is exempt (preceded by `fn`): only call sites count.
    seed ^ index
}

pub struct Scheme;

impl Scheme {
    pub fn reseeded(&self, _seed: u64) -> Scheme {
        // reseed-uses-seed: the seed parameter is discarded
        Scheme
    }
}
