//! lint: untrusted-input — fixture: reasoned allows suppress; reasonless ones are findings.

pub fn masked(table: &[u32; 256], b: u8, crc: u32) -> u32 {
    // lint: allow(slice-index, truncating-cast) — masked to 8 bits into a fixed 256-entry table
    (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize]
}

pub fn wrapped(buf: &[u8]) -> u8 {
    // lint: allow(slice-index) — the caller guarantees a non-empty buffer by
    // construction; this also pins allow comments that wrap across lines
    buf[0]
}

pub fn reasonless(buf: &[u8]) -> u8 {
    // lint: allow(slice-index)
    buf[0]
}
