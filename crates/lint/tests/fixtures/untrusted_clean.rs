//! lint: untrusted-input — fixture: the same operations done safely are silent.

pub fn parse(buf: &[u8]) -> Option<u64> {
    let first = *buf.first()?;
    let wanted = usize::from(first);
    let capped = wanted.min(buf.len());
    let mut bytes: Vec<u8> = Vec::with_capacity(capped);
    bytes.extend_from_slice(buf.get(..capped)?);
    let widened = u64::from(first); // widening conversions are fine
    Some(widened)
}

pub fn sized(count: u16) -> Vec<u8> {
    // `usize::from` is lossless and the u16 bounds the allocation; the guard is
    // the `min` against a constant cap.
    let n = usize::from(count).min(1024);
    Vec::with_capacity(n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let buf = [1u8, 2];
        assert_eq!(buf[0], 1); // indexing in tests is fine
        let v: Vec<u8> = Vec::with_capacity(4096);
        assert!(v.is_empty());
        let x: Option<u8> = Some(3);
        assert_eq!(x.unwrap(), 3);
    }
}
