//! Every rule family is pinned by a fixture pair: a violating source that must
//! produce the expected findings, and a clean sibling that must be silent. The
//! fixtures are plain `.rs` texts under `tests/fixtures/` analyzed via
//! [`f2_lint::analyze_source`]; they are never compiled.

use f2_lint::{analyze_source, Baseline, Registry};

fn rules_of(result: &f2_lint::CheckResult) -> Vec<&str> {
    result.findings.iter().map(|f| f.rule).collect()
}

fn count(result: &f2_lint::CheckResult, rule: &str) -> usize {
    result.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn untrusted_rules_fire_on_the_violation_fixture() {
    let src = include_str!("fixtures/untrusted_violation.rs");
    let result = analyze_source("tests/fixtures/untrusted_violation.rs", src, &Registry::default());
    assert_eq!(count(&result, "slice-index"), 1, "{:?}", rules_of(&result));
    assert_eq!(count(&result, "no-unwrap"), 2, "{:?}", rules_of(&result)); // unwrap + expect
    assert_eq!(count(&result, "no-panic"), 3, "{:?}", rules_of(&result)); // panic!/unreachable!/todo!
    assert_eq!(count(&result, "alloc-before-cap"), 1, "{:?}", rules_of(&result));
    assert!(count(&result, "truncating-cast") >= 2, "{:?}", rules_of(&result));
    // Diagnostics carry the function and a 1-based line into the fixture.
    let idx = result.findings.iter().find(|f| f.rule == "slice-index").unwrap();
    assert_eq!(idx.function, "parse");
    assert_eq!(idx.line, 4);
    assert_eq!(idx.file, "tests/fixtures/untrusted_violation.rs");
}

#[test]
fn untrusted_clean_fixture_is_silent() {
    let src = include_str!("fixtures/untrusted_clean.rs");
    let result = analyze_source("tests/fixtures/untrusted_clean.rs", src, &Registry::default());
    assert!(result.findings.is_empty(), "{:?}", result.findings);
}

#[test]
fn allow_comments_suppress_with_a_reason_and_fire_without_one() {
    let src = include_str!("fixtures/allow_comment.rs");
    let result = analyze_source("tests/fixtures/allow_comment.rs", src, &Registry::default());
    // `masked` and `wrapped` are fully suppressed (3 would-be findings);
    // `reasonless` yields the meta-finding plus its unsuppressed violation.
    assert_eq!(count(&result, "allow-missing-reason"), 1, "{:?}", rules_of(&result));
    assert_eq!(count(&result, "slice-index"), 1, "{:?}", rules_of(&result));
    assert_eq!(count(&result, "truncating-cast"), 0, "{:?}", rules_of(&result));
    assert!(result.allowed >= 3, "suppressed {} findings", result.allowed);
    let leftover = result.findings.iter().find(|f| f.rule == "slice-index").unwrap();
    assert_eq!(leftover.function, "reasonless");
}

#[test]
fn constant_time_rules_follow_the_registry() {
    let registry =
        Registry::parse("tests/fixtures/secret_flow.rs :: mod_exp :: exp").expect("registry");
    let src = include_str!("fixtures/secret_flow.rs");
    let result = analyze_source("tests/fixtures/secret_flow.rs", src, &registry);
    assert!(count(&result, "secret-branch") >= 1, "{:?}", rules_of(&result));
    assert!(count(&result, "secret-divmod") >= 1, "{:?}", rules_of(&result));
    assert!(count(&result, "secret-index") >= 1, "{:?}", rules_of(&result));
    // Taint is function-scoped: the unlisted sibling with identical shapes is silent.
    assert!(result.findings.iter().all(|f| f.function == "mod_exp"), "{:?}", result.findings);

    // Without the registry entry the whole fixture is silent.
    let silent = analyze_source("tests/fixtures/secret_flow.rs", src, &Registry::default());
    assert!(silent.findings.is_empty(), "{:?}", silent.findings);
}

#[test]
fn hygiene_rules_fire_and_clear() {
    let src = include_str!("fixtures/hygiene_violation.rs");
    let result = analyze_source("tests/fixtures/hygiene_violation.rs", src, &Registry::default());
    assert_eq!(count(&result, "thread-local"), 1, "{:?}", rules_of(&result));
    assert_eq!(count(&result, "chunk-seed-discipline"), 1, "{:?}", rules_of(&result));
    assert_eq!(count(&result, "reseed-uses-seed"), 1, "{:?}", rules_of(&result));
    let call = result.findings.iter().find(|f| f.rule == "chunk-seed-discipline").unwrap();
    assert_eq!(call.function, "chunk_key", "call sites, not the definition");

    let clean = include_str!("fixtures/hygiene_clean.rs");
    let result = analyze_source("tests/fixtures/hygiene_clean.rs", clean, &Registry::default());
    assert!(result.findings.is_empty(), "{:?}", result.findings);
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    let missing = include_str!("fixtures/lib_missing_forbid.rs");
    let result = analyze_source("tests/fixtures/lib.rs", missing, &Registry::default());
    assert_eq!(count(&result, "missing-forbid-unsafe"), 1, "{:?}", rules_of(&result));

    let clean = include_str!("fixtures/lib_clean.rs");
    let result = analyze_source("tests/fixtures/lib.rs", clean, &Registry::default());
    assert!(result.findings.is_empty(), "{:?}", result.findings);

    // A non-root module is never held to the crate-root attribute rule.
    let result = analyze_source("tests/fixtures/module.rs", missing, &Registry::default());
    assert!(result.findings.is_empty(), "{:?}", result.findings);
}

#[test]
fn baseline_suppresses_known_findings_but_not_new_ones() {
    let src = include_str!("fixtures/untrusted_violation.rs");
    let label = "tests/fixtures/untrusted_violation.rs";
    let result = analyze_source(label, src, &Registry::default());
    assert!(!result.findings.is_empty());

    // A baseline built from today's findings covers all of them…
    let baseline = Baseline::from_findings(&result.findings);
    let (covered, fresh) = baseline.partition(&result.findings);
    assert_eq!(covered.len(), result.findings.len());
    assert!(fresh.is_empty(), "{fresh:?}");

    // …and it survives a JSON round trip.
    let reparsed = Baseline::parse(&baseline.to_json()).expect("baseline parses");
    let (_, fresh) = reparsed.partition(&result.findings);
    assert!(fresh.is_empty(), "{fresh:?}");

    // A new violation seeded below the known ones is NOT covered.
    let seeded = format!("{src}\npub fn fresh_violation(buf: &[u8]) -> u8 {{\n    buf[7]\n}}\n");
    let seeded_result = analyze_source(label, &seeded, &Registry::default());
    let (_, fresh) = reparsed.partition(&seeded_result.findings);
    assert_eq!(fresh.len(), 1, "{fresh:?}");
    assert_eq!(fresh[0].rule, "slice-index");
    assert_eq!(fresh[0].function, "fresh_violation");
}
