//! A hand-rolled Rust lexer: just enough tokenization for lexical lint rules.
//!
//! The analyzer deliberately avoids a full parser (no `syn`, consistent with the
//! workspace's vendored-shims-only dependency policy): every rule this crate
//! enforces — forbidden calls, secret-dependent operators, indexing, casts — is
//! decidable from the token stream plus brace-level scoping. The lexer therefore
//! produces two artifacts per file:
//!
//! * a [`Token`] stream with comments and whitespace stripped (string/char literals
//!   are single opaque tokens, so their contents can never fake an identifier), and
//! * the [`Comment`] list, kept separately because comments carry the lint's own
//!   control annotations (`lint: allow(...)`, scope markers) and must stay
//!   addressable by line.
//!
//! Handled Rust-isms: nested block comments, raw strings (`r#"…"#` with any hash
//! depth), byte and byte-raw strings, char literals vs lifetimes, numeric literals
//! with suffixes, and raw identifiers (`r#type`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `as`). Raw identifiers (`r#type`)
    /// arrive without the `r#` prefix.
    Ident,
    /// A lifetime (`'a`, `'static`), including the quote.
    Lifetime,
    /// A string, raw-string, byte-string, char, or numeric literal (one opaque
    /// token; the text of string-likes is the raw source slice).
    Literal,
    /// A single punctuation character (`{`, `[`, `!`, `?`, …). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (for [`TokenKind::Punct`], exactly one character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line, block, or doc) with the 1-based line it starts on. The text
/// excludes the comment markers for line comments and keeps the raw interior for
/// block comments.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the leading `//`, `///`, `//!` marker (block comments:
    /// the interior between `/*` and `*/`).
    pub text: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lex `source` into tokens and comments. Unterminated constructs (a string or
/// block comment running to end of input) are tolerated: the lexer consumes to the
/// end rather than erroring, because lint input is the workspace's own
/// rustc-accepted code and fixtures.
pub fn lex(source: &str) -> Lexed {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line);
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line);
                }
                'r' if matches!(self.peek(1), Some('"')) => {
                    self.bump();
                    self.raw_string(line);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2) == Some('"') => {
                    self.bump();
                    self.raw_string(line);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier r#type: strip the prefix, keep the name.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.lifetime_or_char(line),
                _ if is_ident_start(c) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        // Swallow the doc markers so `/// x` and `//! x` read as ` x`.
        if matches!(self.peek(0), Some('/' | '!')) {
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    fn string_literal(&mut self, line: u32) {
        let mut text = String::from('"');
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    fn raw_string(&mut self, line: u32) {
        // At entry the cursor sits on `#…#"` or `"`. Count the hashes.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::from('"');
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let closing = (0..hashes).all(|i| self.peek(i) == Some('#'));
                if closing {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    fn lifetime_or_char(&mut self, line: u32) {
        // 'a' / '\n' are char literals; 'a / 'static / '_ are lifetimes. A quote
        // followed by an escape is always a char; otherwise it is a char iff the
        // character after the next one closes the quote.
        let is_char =
            matches!((self.peek(1), self.peek(2)), (Some('\\'), _) | (Some(_), Some('\'')));
        if is_char {
            let mut text = String::from('\'');
            self.bump();
            while let Some(c) = self.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(esc) = self.bump() {
                            text.push(esc);
                        }
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Literal, text, line);
        } else {
            let mut text = String::from('\'');
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                text.push(self.bump().unwrap_or('\0'));
            }
            self.push(TokenKind::Lifetime, text, line);
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            text.push(self.bump().unwrap_or('\0'));
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..len` does not (the range dots are
                // punctuation) and neither does a method call `1.to_string()`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_never_leak_identifiers() {
        let src = r##"
            // unwrap in a comment
            /* nested /* unwrap */ still comment */
            let s = "call .unwrap() here";
            let r = r#"raw "unwrap" text"#;
            let b = b"unwrap";
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap"), "{ids:?}");
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'static str { 'x'; '_' }").tokens;
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\nlet b = \"two\nlines\";\nlet c = 3;";
        let toks = lex(src).tokens;
        let c_tok = toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c_tok.line, 4);
    }

    #[test]
    fn raw_identifiers_and_numbers() {
        let toks = lex("let r#type = 0xFF_u64 + 1.5e3; x[0..len]").tokens;
        assert!(toks.iter().any(|t| t.is_ident("type")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal && t.text == "0xFF_u64"));
        // Range dots stay punctuation: `0..len` is three tokens.
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal && t.text == "0"));
        assert!(toks.iter().any(|t| t.is_ident("len")));
    }
}
