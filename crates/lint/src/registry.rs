//! The committed secret-function registry.
//!
//! Constant-time rules only make sense relative to a declaration of *which values
//! are secret where*. That declaration lives in `crates/lint/secret_functions.reg`,
//! a line-oriented committed file so registry changes show up in review:
//!
//! ```text
//! # comment
//! crates/crypto/src/montgomery.rs :: pow :: exp
//! crates/crypto/src/paillier.rs :: decrypt :: p, q, hp, hq
//! ```
//!
//! Each line is `<path-suffix> :: <fn-name> :: <secret idents, comma separated>`.
//! The path is matched as a suffix of the analyzed file's workspace-relative path,
//! so the registry survives the repo being checked out anywhere.

/// One registry entry: a function plus the identifiers that hold secrets inside it.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// Workspace-relative path suffix of the file holding the function.
    pub path_suffix: String,
    /// The function's name.
    pub fn_name: String,
    /// Identifiers seeded as tainted inside the function (parameters, fields,
    /// locals — anything that holds key material or plaintext-derived state).
    pub secrets: Vec<String>,
}

/// The parsed registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// All entries in file order.
    pub entries: Vec<RegistryEntry>,
}

impl Registry {
    /// Parse the registry file format. Unparseable lines are returned as errors with
    /// their 1-based line number so a typo fails the lint run loudly instead of
    /// silently dropping a secret from coverage.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split("::").map(str::trim);
            let (path, name, secrets) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(n), Some(s)) if !p.is_empty() && !n.is_empty() && !s.is_empty() => {
                    (p, n, s)
                }
                _ => {
                    return Err(format!(
                        "registry line {}: expected `<path> :: <fn> :: <secrets>`, got `{line}`",
                        idx + 1
                    ));
                }
            };
            if parts.next().is_some() {
                return Err(format!("registry line {}: too many `::` separators", idx + 1));
            }
            entries.push(RegistryEntry {
                path_suffix: path.to_string(),
                fn_name: name.to_string(),
                secrets: secrets
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect(),
            });
        }
        Ok(Registry { entries })
    }

    /// The entry for function `fn_name` in the file at `path` (matched by suffix on
    /// `/`-normalized paths), if registered.
    pub fn lookup(&self, path: &str, fn_name: &str) -> Option<&RegistryEntry> {
        let normalized = path.replace('\\', "/");
        self.entries
            .iter()
            .find(|e| e.fn_name == fn_name && normalized.ends_with(e.path_suffix.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_looks_up_by_suffix() {
        let reg = Registry::parse(
            "# secrets\n\ncrates/crypto/src/montgomery.rs :: pow :: exp\n\
             crates/crypto/src/paillier.rs :: decrypt :: p, q, hp\n",
        )
        .unwrap();
        assert_eq!(reg.entries.len(), 2);
        let hit = reg.lookup("/work/repo/crates/crypto/src/montgomery.rs", "pow").unwrap();
        assert_eq!(hit.secrets, ["exp"]);
        assert!(reg.lookup("/work/repo/crates/crypto/src/montgomery.rs", "mul").is_none());
        assert!(reg.lookup("crates/io/src/wire.rs", "pow").is_none());
    }

    #[test]
    fn bad_lines_error_with_line_number() {
        let err = Registry::parse("crates/a.rs :: only_two").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
