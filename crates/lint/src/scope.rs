//! Function and test-region scoping via brace matching.
//!
//! Rules need two questions answered per token: *which function is this in?* and
//! *is it test code?* Both are decidable from the token stream: a function body is
//! the brace pair following `fn <name> (…)`, and test code is either a `fn` carrying
//! a `#[test]`-ish attribute or anything inside a `#[cfg(test)] mod … { }` region.
//! No expression parsing is needed — only balanced-delimiter tracking.

use crate::lexer::{Token, TokenKind};

/// One function's extent in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Token index of the body's opening `{`.
    pub start: usize,
    /// Token index of the body's closing `}` (equal to `start` while unclosed).
    pub end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (signature start, for parameter scans).
    pub sig_start: usize,
    /// True for `#[test]` functions and functions inside `#[cfg(test)]` modules.
    pub is_test: bool,
}

/// All function spans and test regions of one file.
#[derive(Debug, Default)]
pub struct Scopes {
    /// Functions in order of appearance. Nested functions appear after their
    /// enclosing function.
    pub functions: Vec<FnSpan>,
    /// `#[cfg(test)] mod` body extents as `(open_brace_idx, close_brace_idx)`.
    pub test_regions: Vec<(usize, usize)>,
}

impl Scopes {
    /// The innermost function containing token `idx`, if any.
    pub fn enclosing(&self, idx: usize) -> Option<&FnSpan> {
        self.functions.iter().rfind(|f| f.start <= idx && idx <= f.end)
    }

    /// Name of the innermost enclosing function, or `""` at module level.
    pub fn enclosing_name(&self, idx: usize) -> &str {
        self.enclosing(idx).map_or("", |f| f.name.as_str())
    }

    /// True if token `idx` lies in test code (a `#[test]` fn or `#[cfg(test)]` mod).
    pub fn is_test(&self, idx: usize) -> bool {
        if self.test_regions.iter().any(|&(s, e)| s <= idx && idx <= e) {
            return true;
        }
        self.enclosing(idx).is_some_and(|f| f.is_test)
    }
}

/// Item keywords that consume (and thereby clear) any pending attributes.
const ITEM_KEYWORDS: &[&str] =
    &["fn", "mod", "struct", "enum", "impl", "trait", "const", "static", "use", "type"];

/// Compute function spans and test regions for a token stream.
pub fn scan(tokens: &[Token]) -> Scopes {
    let mut scopes = Scopes::default();
    let mut depth: usize = 0;
    // Attribute state: does a pending `#[…]` contain the ident `test`?
    let mut pending_test_attr = false;
    // A `fn` whose body `{` has not been seen yet: (record idx, parens open since).
    let mut pending_fn: Option<(usize, usize)> = None;
    // A `#[cfg(test)] mod` awaiting its `{`.
    let mut pending_test_mod = false;
    // Open extents: (record index, entry depth). Separate stacks for fns and mods.
    let mut open_fns: Vec<(usize, usize)> = Vec::new();
    let mut open_mods: Vec<(usize, usize)> = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        match tok.kind {
            TokenKind::Punct if tok.is_punct('#') => {
                // Attribute: `#[…]` or inner `#![…]`. Scan to the matching `]`.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
                    let mut bracket = 0usize;
                    let mut has_test = false;
                    while let Some(t) = tokens.get(j) {
                        if t.is_punct('[') {
                            bracket += 1;
                        } else if t.is_punct(']') {
                            bracket -= 1;
                            if bracket == 0 {
                                break;
                            }
                        } else if t.is_ident("test") {
                            has_test = true;
                        }
                        j += 1;
                    }
                    pending_test_attr |= has_test;
                    i = j + 1;
                    continue;
                }
            }
            TokenKind::Ident if tok.text == "fn" => {
                let name = tokens
                    .get(i + 1)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map_or_else(String::new, |t| t.text.clone());
                let in_test_region = !open_mods.is_empty()
                    || open_fns.iter().any(|&(rec, _)| scopes.functions[rec].is_test);
                scopes.functions.push(FnSpan {
                    name,
                    start: i,
                    end: i,
                    line: tok.line,
                    sig_start: i,
                    is_test: pending_test_attr || in_test_region,
                });
                pending_fn = Some((scopes.functions.len() - 1, 0));
                pending_test_attr = false;
                i += 1;
                continue;
            }
            TokenKind::Ident if tok.text == "mod" => {
                pending_test_mod = pending_test_attr;
                pending_test_attr = false;
            }
            TokenKind::Ident if ITEM_KEYWORDS.contains(&tok.text.as_str()) => {
                pending_test_attr = false;
            }
            TokenKind::Punct => match tok.text.as_str() {
                "(" => {
                    if let Some((_, parens)) = pending_fn.as_mut() {
                        *parens += 1;
                    }
                }
                ")" => {
                    if let Some((_, parens)) = pending_fn.as_mut() {
                        *parens = parens.saturating_sub(1);
                    }
                }
                ";" => {
                    // Trait method declaration or `mod name;` — no body follows.
                    if pending_fn.is_some_and(|(_, parens)| parens == 0) {
                        if let Some((rec, _)) = pending_fn.take() {
                            // A bodyless declaration has no extent; drop the record.
                            scopes.functions.remove(rec);
                        }
                    }
                    pending_test_mod = false;
                }
                "{" => {
                    if let Some((rec, 0)) = pending_fn {
                        scopes.functions[rec].start = i;
                        open_fns.push((rec, depth));
                        pending_fn = None;
                    } else if pending_test_mod {
                        scopes.test_regions.push((i, i));
                        open_mods.push((scopes.test_regions.len() - 1, depth));
                        pending_test_mod = false;
                    }
                    depth += 1;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    while open_fns.last().is_some_and(|&(_, d)| d == depth) {
                        if let Some((rec, _)) = open_fns.pop() {
                            scopes.functions[rec].end = i;
                        }
                    }
                    while open_mods.last().is_some_and(|&(_, d)| d == depth) {
                        if let Some((rec, _)) = open_mods.pop() {
                            scopes.test_regions[rec].1 = i;
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    // Close anything left dangling (unterminated input) at end of stream.
    let last = tokens.len().saturating_sub(1);
    for (rec, _) in open_fns {
        scopes.functions[rec].end = last;
    }
    for (rec, _) in open_mods {
        scopes.test_regions[rec].1 = last;
    }
    scopes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes_of(src: &str) -> (Vec<crate::lexer::Token>, Scopes) {
        let lexed = lex(src);
        let scopes = scan(&lexed.tokens);
        (lexed.tokens, scopes)
    }

    #[test]
    fn fn_extents_and_nesting() {
        let src = "fn outer() { fn inner() { 1 } inner() }\nfn later() {}";
        let (tokens, scopes) = scopes_of(src);
        assert_eq!(scopes.functions.len(), 3);
        let one = tokens.iter().position(|t| t.text == "1").unwrap();
        assert_eq!(scopes.enclosing_name(one), "inner");
        let call = tokens.iter().rposition(|t| t.is_ident("inner")).unwrap();
        assert_eq!(scopes.enclosing_name(call), "outer");
    }

    #[test]
    fn cfg_test_mod_and_test_attr_are_test_code() {
        let src = r#"
            fn prod() { body() }
            #[test]
            fn unit() { check() }
            #[cfg(test)]
            mod tests {
                fn helper() { aid() }
            }
        "#;
        let (tokens, scopes) = scopes_of(src);
        let body = tokens.iter().position(|t| t.is_ident("body")).unwrap();
        let check = tokens.iter().position(|t| t.is_ident("check")).unwrap();
        let aid = tokens.iter().position(|t| t.is_ident("aid")).unwrap();
        assert!(!scopes.is_test(body));
        assert!(scopes.is_test(check));
        assert!(scopes.is_test(aid));
    }

    #[test]
    fn derive_attrs_do_not_mark_following_fn_as_test() {
        // `#[derive(PartialEq)] struct S;` clears the attribute state before `fn`.
        let src = "#[derive(PartialEq)] struct S; fn f() { x() }";
        let (tokens, scopes) = scopes_of(src);
        let x = tokens.iter().position(|t| t.is_ident("x")).unwrap();
        assert!(!scopes.is_test(x));
    }

    #[test]
    fn trait_method_declarations_have_no_extent() {
        let src = "trait T { fn decl(&self) -> u8; fn with_body(&self) { go() } }";
        let (tokens, scopes) = scopes_of(src);
        assert_eq!(scopes.functions.len(), 1);
        let go = tokens.iter().position(|t| t.is_ident("go")).unwrap();
        assert_eq!(scopes.enclosing_name(go), "with_body");
    }
}
