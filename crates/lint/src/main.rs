//! `f2-lint` — the CLI wrapper over `f2_lint`.
//!
//! Exit codes: `0` clean (or debts all baselined), `1` findings not covered by the
//! baseline in `--check` mode, `2` usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use f2_lint::{analyze, find_workspace_root, report_json, Baseline};

const BASELINE_FILE: &str = "LINT_baseline.json";
const REPORT_FILE: &str = "LINT_report.json";

struct Options {
    check: bool,
    update_baseline: bool,
    quiet: bool,
    root: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: f2-lint [--check] [--update-baseline] [--quiet] [--root <path>]\n\
     \n\
     Analyze the F² workspace against the repo lint rules.\n\
       --check            exit 1 if any finding is not covered by LINT_baseline.json\n\
       --update-baseline  rewrite LINT_baseline.json to cover current findings\n\
       --quiet            suppress per-finding diagnostics, print totals only\n\
       --root <path>      workspace root (default: nearest [workspace] Cargo.toml)"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { check: false, update_baseline: false, quiet: false, root: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--update-baseline" => opts.update_baseline = true,
            "--quiet" => opts.quiet = true,
            "--root" => {
                let path = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml above the current directory")?
        }
    };

    let analysis = analyze(&root)?;

    let baseline_path = root.join(BASELINE_FILE);
    let baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text)?
    } else {
        Baseline::default()
    };
    let (covered, fresh) = baseline.partition(&analysis.findings);

    let report =
        report_json(&analysis.findings, fresh.len(), analysis.files_scanned, analysis.allowed);
    let report_path = root.join(REPORT_FILE);
    std::fs::write(&report_path, report)
        .map_err(|e| format!("write {}: {e}", report_path.display()))?;

    if opts.update_baseline {
        let new_baseline = Baseline::from_findings(&analysis.findings);
        std::fs::write(&baseline_path, new_baseline.to_json())
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
    }

    if !opts.quiet {
        for f in &fresh {
            println!("error[{}]: {}", f.rule, f.message);
            println!("  --> {}:{} (in `{}`)", f.file, f.line, f.function);
            println!("   | {}", f.snippet);
        }
    }
    println!(
        "f2-lint: {} files, {} findings ({} baselined, {} new), {} allow-suppressed",
        analysis.files_scanned,
        analysis.findings.len(),
        covered.len(),
        fresh.len(),
        analysis.allowed,
    );
    if opts.update_baseline {
        println!("f2-lint: baseline rewritten with {} findings", analysis.findings.len());
    }
    Ok(fresh.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            let check = std::env::args().any(|a| a == "--check");
            if check {
                eprintln!("f2-lint: new findings not covered by {BASELINE_FILE}");
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                ExitCode::SUCCESS
            } else {
                eprintln!("f2-lint: {msg}\n\n{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
