//! Baseline bookkeeping and the machine-readable report.
//!
//! The baseline (`LINT_baseline.json`) records *known debts* — findings that are
//! tracked rather than silenced (the AES T-tables, the windowed-exponent branches).
//! CI fails only on findings **not** covered by the baseline, so new code is held
//! to the rules while the debt stays visible and enumerable.
//!
//! Baseline entries are keyed by `(rule, file, function, snippet)` with a count,
//! *not* by line number: edits elsewhere in a file move lines constantly, and a
//! line-keyed baseline would churn on every refactor. The snippet (the trimmed
//! source line, ≤120 chars) pins the key to the actual offending code, and the
//! count lets one key cover the N structurally-identical table lookups of a
//! T-table round without hiding an N+1st.
//!
//! Both files are serialized with a small hand-rolled JSON codec (sorted keys,
//! fixed indentation) so regeneration is deterministic and `git diff --exit-code`
//! can verify the committed report is fresh.

use std::collections::HashMap;

use crate::rules::Finding;

// ───────────────────────────── minimal JSON value ─────────────────────────────

/// A parsed JSON value. Only what the baseline format needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (baseline files only hold non-negative integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset for context.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing content at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(members)),
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d =
                                self.bump().and_then(|c| c.to_digit(16)).ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape".to_string()),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }
}

/// Escape and quote a string for JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ──────────────────────────────── the baseline ────────────────────────────────

/// Baseline key: where a debt lives, line-number-free.
pub type BaselineKey = (String, String, String, String);

fn key_of(f: &Finding) -> BaselineKey {
    (f.rule.to_string(), f.file.clone(), f.function.clone(), f.snippet.clone())
}

/// The committed set of known findings, keyed by `(rule, file, function, snippet)`
/// with an occurrence count per key.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Known-debt counts per key.
    pub entries: HashMap<BaselineKey, usize>,
}

impl Baseline {
    /// Build a baseline covering exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: HashMap<BaselineKey, usize> = HashMap::new();
        for f in findings {
            *entries.entry(key_of(f)).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parse `LINT_baseline.json`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = parse_json(text)?;
        let list =
            doc.get("entries").and_then(Json::as_arr).ok_or("baseline: missing `entries` array")?;
        let mut entries = HashMap::new();
        for item in list {
            let field = |k: &str| {
                item.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry: missing string `{k}`"))
            };
            let count =
                item.get("count").and_then(Json::as_u64).ok_or("baseline entry: missing `count`")?
                    as usize;
            entries.insert(
                (field("rule")?, field("file")?, field("function")?, field("snippet")?),
                count,
            );
        }
        Ok(Baseline { entries })
    }

    /// Serialize deterministically (entries sorted by key).
    pub fn to_json(&self) -> String {
        let mut keys: Vec<(&BaselineKey, usize)> =
            self.entries.iter().map(|(k, &c)| (k, c)).collect();
        keys.sort();
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, ((rule, file, function, snippet), count)) in keys.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"rule\": {}, ", json_escape(rule)));
            out.push_str(&format!("\"file\": {}, ", json_escape(file)));
            out.push_str(&format!("\"function\": {}, ", json_escape(function)));
            out.push_str(&format!("\"snippet\": {}, ", json_escape(snippet)));
            out.push_str(&format!("\"count\": {count}}}"));
            out.push_str(if i + 1 < keys.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Split findings into `(baseline_covered, new)`. Per key, the first
    /// `count` occurrences (in file/line order) are covered; any beyond that —
    /// or any unknown key — are new.
    pub fn partition<'a>(&self, findings: &'a [Finding]) -> (Vec<&'a Finding>, Vec<&'a Finding>) {
        let mut remaining = self.entries.clone();
        let mut covered = Vec::new();
        let mut fresh = Vec::new();
        for f in findings {
            match remaining.get_mut(&key_of(f)) {
                Some(budget) if *budget > 0 => {
                    *budget -= 1;
                    covered.push(f);
                }
                _ => fresh.push(f),
            }
        }
        (covered, fresh)
    }
}

/// Serialize the full report (`LINT_report.json`): every finding with its line,
/// plus run totals. Deterministic given deterministic finding order.
pub fn report_json(
    findings: &[Finding],
    new_count: usize,
    files_scanned: usize,
    allowed: usize,
) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"findings_total\": {},\n", findings.len()));
    out.push_str(&format!("  \"findings_new\": {new_count},\n"));
    out.push_str(&format!("  \"allow_suppressed\": {allowed},\n"));
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"rule\": {}, ", json_escape(f.rule)));
        out.push_str(&format!("\"file\": {}, ", json_escape(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"function\": {}, ", json_escape(&f.function)));
        out.push_str(&format!("\"message\": {}, ", json_escape(&f.message)));
        out.push_str(&format!("\"snippet\": {}}}", json_escape(&f.snippet)));
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            function: "f".to_string(),
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let text =
            r#"{"version": 1, "entries": [{"rule": "a\"b", "count": 2, "list": [1, true, null]}]}"#;
        let doc = parse_json(text).unwrap();
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(1));
        let first = &doc.get("entries").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(first.get("rule").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(parse_json(&json_escape("x\n\t\"\\ü")).unwrap().as_str(), Some("x\n\t\"\\ü"));
    }

    #[test]
    fn baseline_roundtrip_and_partition() {
        let found = vec![
            finding(crate::rules::SECRET_INDEX, "a.rs", 10, "t[x]"),
            finding(crate::rules::SECRET_INDEX, "a.rs", 20, "t[x]"),
            finding(crate::rules::SECRET_INDEX, "a.rs", 30, "t[y]"),
        ];
        let base = Baseline::from_findings(&found[..2]);
        let reparsed = Baseline::parse(&base.to_json()).unwrap();
        let (covered, fresh) = reparsed.partition(&found);
        assert_eq!(covered.len(), 2);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].line, 30);
    }

    #[test]
    fn extra_occurrence_of_known_key_is_new() {
        let one = vec![finding(crate::rules::SECRET_BRANCH, "a.rs", 5, "if x")];
        let base = Baseline::from_findings(&one);
        let two = vec![
            finding(crate::rules::SECRET_BRANCH, "a.rs", 5, "if x"),
            finding(crate::rules::SECRET_BRANCH, "a.rs", 9, "if x"),
        ];
        let (_, fresh) = base.partition(&two);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].line, 9);
    }
}
