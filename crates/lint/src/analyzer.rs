//! Workspace walking and per-file orchestration.
//!
//! The analyzer discovers source files under `crates/*/src` and the root facade's
//! `src/`, reads each file once, and runs the full rule set from [`crate::rules`].
//! Scope annotations are discovered from the files themselves (`lint:
//! untrusted-input`, `lint: chunk-seed-authority`) with one crate-level extension:
//! a `lint: planning` annotation in a crate's `lib.rs` applies to every file of
//! that crate, because the planning-cache rule is about a whole layer, not one
//! module.

use std::fs;
use std::path::{Path, PathBuf};

use crate::registry::Registry;
use crate::rules::{self, CheckResult, FileFlags, Finding};
use crate::{lexer, scope};

/// Directory names never descended into while walking `src/` trees.
const SKIP_DIRS: &[&str] = &["target", "tests", "examples", "benches", "fixtures", "vendor"];

/// Workspace-relative path of the committed secret-function registry.
pub const REGISTRY_PATH: &str = "crates/lint/secret_functions.reg";

/// Result of analyzing the workspace (or one fixture).
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by reasoned allow-comments.
    pub allowed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Analyze the workspace rooted at `root`. Reads the committed registry, walks
/// every crate's `src/` tree plus the root facade's `src/`, and returns sorted
/// findings.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let registry_file = root.join(REGISTRY_PATH);
    let registry = if registry_file.is_file() {
        let text = fs::read_to_string(&registry_file)
            .map_err(|e| format!("read {}: {e}", registry_file.display()))?;
        Registry::parse(&text)?
    } else {
        Registry::default()
    };

    let mut crate_srcs: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.join("src").is_dir())
            .collect();
        names.sort();
        crate_srcs.extend(names.into_iter().map(|p| p.join("src")));
    }
    if root.join("src").is_dir() {
        crate_srcs.push(root.join("src"));
    }

    let mut analysis = Analysis::default();
    for src in crate_srcs {
        // Crate-level planning scope comes from the crate root's annotations.
        let lib_rs = src.join("lib.rs");
        let crate_planning = fs::read_to_string(&lib_rs)
            .map(|text| {
                let lexed = lexer::lex(&text);
                rules::scope_flags(&lexed.comments).planning
            })
            .unwrap_or(false);

        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for file in files {
            let source =
                fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
            let label =
                file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            let is_crate_root = file == lib_rs;
            let result = check_one(&label, &source, &registry, crate_planning, is_crate_root);
            analysis.files_scanned += 1;
            analysis.allowed += result.allowed;
            analysis.findings.extend(result.findings);
        }
    }
    analysis
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(analysis)
}

/// Analyze one source text in isolation — the entry point for fixture tests. The
/// fixture self-describes its scopes through its own annotation comments; a
/// `label` ending in `lib.rs` is treated as a crate root.
pub fn analyze_source(label: &str, source: &str, registry: &Registry) -> CheckResult {
    check_one(label, source, registry, false, label.ends_with("lib.rs"))
}

fn check_one(
    label: &str,
    source: &str,
    registry: &Registry,
    crate_planning: bool,
    crate_root: bool,
) -> CheckResult {
    let lexed = lexer::lex(source);
    let scopes = scope::scan(&lexed.tokens);
    let mut flags: FileFlags = rules::scope_flags(&lexed.comments);
    flags.planning |= crate_planning;
    flags.crate_root = crate_root;
    rules::check_file(label, source, &lexed.tokens, &lexed.comments, &scopes, registry, flags)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?.path();
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().to_string());
            if name.as_deref().is_some_and(|n| SKIP_DIRS.contains(&n)) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the workspace root by walking upward from `start` looking for a
/// `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
