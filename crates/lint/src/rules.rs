//! The rule families and the lexical taint engine.
//!
//! Three groups of rules run over each file, gated by the file's scope
//! annotations and the secret-function registry:
//!
//! * **Untrusted-input rules** (files annotated `lint: untrusted-input`):
//!   [`NO_UNWRAP`], [`NO_PANIC`], [`SLICE_INDEX`], [`TRUNCATING_CAST`],
//!   [`ALLOC_BEFORE_CAP`]. These are the panic-freedom and allocation-cap
//!   guarantees for parsers that read attacker-controlled bytes.
//! * **Constant-time rules** (functions listed in the registry): [`SECRET_BRANCH`],
//!   [`SECRET_DIVMOD`], [`SECRET_INDEX`]. A forward lexical taint pass seeds the
//!   registered secret identifiers and propagates through `let`-bindings, plain
//!   assignments, and `for`-patterns; findings fire where control flow, variable-time
//!   arithmetic, or table addressing depends on a tainted identifier.
//! * **Hygiene rules**: [`THREAD_LOCAL`] (planning-scope files), [`CHUNK_SEED`]
//!   (chunk seeds may only be derived inside annotated authority files),
//!   [`RESEED_USES_SEED`] (`reseeded` impls must consume their seed),
//!   [`MISSING_FORBID_UNSAFE`] (crate roots must carry `#![forbid(unsafe_code)]`),
//!   and [`ALLOW_MISSING_REASON`] (an allow-comment without a reason is inert).
//!
//! Suppression is per-line: `// lint: allow(rule-a, rule-b) — reason` on the
//! finding's line or the line directly above it. The reason is mandatory.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Comment, Token, TokenKind};
use crate::registry::Registry;
use crate::scope::Scopes;

/// Forbid `.unwrap()` / `.expect(…)` in untrusted-input code.
pub const NO_UNWRAP: &str = "no-unwrap";
/// Forbid `panic!` / `unreachable!` / `todo!` / `unimplemented!` in untrusted-input code.
pub const NO_PANIC: &str = "no-panic";
/// Forbid direct slice/array indexing (`x[i]`, `&x[a..b]`) in untrusted-input code.
pub const SLICE_INDEX: &str = "slice-index";
/// Forbid truncating `as` casts (to u8/u16/u32/usize and signed kin) in untrusted-input code.
pub const TRUNCATING_CAST: &str = "truncating-cast";
/// Length-prefixed reads must cap a wire-derived size before allocating with it.
pub const ALLOC_BEFORE_CAP: &str = "alloc-before-cap";
/// Secret-dependent `if`/`while`/`match`/`?` in a registered constant-time function.
pub const SECRET_BRANCH: &str = "secret-branch";
/// `%` / `/` (or division-style method calls) on secret operands.
pub const SECRET_DIVMOD: &str = "secret-divmod";
/// Table loads addressed by a secret-derived index.
pub const SECRET_INDEX: &str = "secret-index";
/// No new `thread_local!` caches in planning-scope code.
pub const THREAD_LOCAL: &str = "thread-local";
/// `chunk_seed(…)` may only be called from annotated seed-authority files.
pub const CHUNK_SEED: &str = "chunk-seed-discipline";
/// A `reseeded` implementation must consume its seed parameter.
pub const RESEED_USES_SEED: &str = "reseed-uses-seed";
/// Crate roots must carry `#![forbid(unsafe_code)]`.
pub const MISSING_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
/// `lint: allow(…)` without a written reason is inactive and flagged.
pub const ALLOW_MISSING_REASON: &str = "allow-missing-reason";

/// Every rule identifier, for docs and CLI listings.
pub const ALL_RULES: &[&str] = &[
    NO_UNWRAP,
    NO_PANIC,
    SLICE_INDEX,
    TRUNCATING_CAST,
    ALLOC_BEFORE_CAP,
    SECRET_BRANCH,
    SECRET_DIVMOD,
    SECRET_INDEX,
    THREAD_LOCAL,
    CHUNK_SEED,
    RESEED_USES_SEED,
    MISSING_FORBID_UNSAFE,
    ALLOW_MISSING_REASON,
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of the constants in this module).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function name, or `""` at module level.
    pub function: String,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line (≤120 chars), used for baseline keying.
    pub snippet: String,
}

/// Scope annotations discovered in a file's comments.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileFlags {
    /// `lint: untrusted-input` — panic-freedom rules apply.
    pub untrusted: bool,
    /// `lint: planning` — the thread-local rule applies (set on the file or
    /// inherited from the crate root by the analyzer).
    pub planning: bool,
    /// `lint: chunk-seed-authority` — this file may call `chunk_seed`.
    pub seed_authority: bool,
    /// This file is a crate root (`lib.rs`), so `missing-forbid-unsafe` applies.
    pub crate_root: bool,
}

/// Read a file's own scope annotations out of its comments. Annotations must
/// start the comment (`//! lint: untrusted-input — …`); mentions elsewhere in
/// prose or doc text are inert, so documentation *about* the lint never
/// re-scopes the file containing it.
pub fn scope_flags(comments: &[Comment]) -> FileFlags {
    let mut flags = FileFlags::default();
    for c in comments {
        let t = c.text.trim_start();
        if t.starts_with("lint: untrusted-input") {
            flags.untrusted = true;
        }
        if t.starts_with("lint: planning") {
            flags.planning = true;
        }
        if t.starts_with("lint: chunk-seed-authority") {
            flags.seed_authority = true;
        }
    }
    flags
}

/// Result of checking one file.
#[derive(Debug, Default)]
pub struct CheckResult {
    /// Findings not suppressed by an allow-comment.
    pub findings: Vec<Finding>,
    /// Count of findings suppressed by a reasoned allow-comment.
    pub allowed: usize,
}

const RUST_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "try", "type", "union", "unsafe", "use", "where", "while", "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `as`-cast target types that can silently discard bits.
const TRUNCATING_TARGETS: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

/// Method names that perform division/remainder (variable-time on most targets).
const DIVMOD_METHODS: &[&str] = &[
    "rem",
    "div_rem",
    "div_ceil",
    "div_euclid",
    "rem_euclid",
    "checked_div",
    "checked_rem",
    "wrapping_div",
    "wrapping_rem",
    "mod_pow",
    "mod_pow_generic",
    "mul_mod",
];

/// Identifiers whose presence makes an allocation-size expression self-capping.
const SIZE_SAFE_IDENTS: &[&str] =
    &["len", "min", "clamp", "count_u32", "count_u64", "capacity", "remaining"];

/// Identifiers that count as a cap/validation when they share a statement with a
/// size variable earlier in the function.
const GUARD_IDENTS: &[&str] =
    &["min", "clamp", "count_u32", "count_u64", "check_count", "try_from", "len", "take"];

/// Check one file. `path` is the workspace-relative path used in diagnostics and
/// registry lookups; `source` is used for snippets; `flags` carries the file's
/// scope annotations (possibly augmented by the analyzer with crate-level facts).
pub fn check_file(
    path: &str,
    source: &str,
    tokens: &[Token],
    comments: &[Comment],
    scopes: &Scopes,
    registry: &Registry,
    flags: FileFlags,
) -> CheckResult {
    let mut checker = Checker {
        path,
        tokens,
        scopes,
        lines: source.lines().collect(),
        allow: HashMap::new(),
        seen: HashSet::new(),
        out: CheckResult::default(),
    };
    checker.collect_allows(comments);
    if flags.untrusted {
        checker.untrusted_rules();
        checker.alloc_before_cap();
    }
    checker.constant_time_rules(registry);
    checker.hygiene_rules(flags);
    checker.out
}

struct Checker<'a> {
    path: &'a str,
    tokens: &'a [Token],
    scopes: &'a Scopes,
    lines: Vec<&'a str>,
    /// line → rules allowed on that line.
    allow: HashMap<u32, HashSet<String>>,
    /// (rule, line) pairs already reported.
    seen: HashSet<(&'static str, u32)>,
    out: CheckResult,
}

impl Checker<'_> {
    fn collect_allows(&mut self, comments: &[Comment]) {
        let comment_lines: HashSet<u32> = comments.iter().map(|c| c.line).collect();
        for c in comments {
            // Like scope annotations, an allow must start its comment — quoting the
            // syntax in prose or a doc code block must not create a suppression.
            let trimmed = c.text.trim_start();
            if !trimmed.starts_with("lint: allow(") {
                continue;
            }
            let rest = &trimmed["lint: allow(".len()..];
            let Some(close) = rest.find(')') else { continue };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(str::trim)
                .filter(|r| !r.is_empty())
                .map(str::to_string)
                .collect();
            let reason = rest[close + 1..]
                .trim_start_matches(|ch: char| {
                    ch.is_whitespace() || matches!(ch, '—' | '–' | '-' | ':' | '.')
                })
                .trim();
            if reason.is_empty() {
                self.report(
                    ALLOW_MISSING_REASON,
                    c.line,
                    String::new(),
                    "allow-comment has no reason; write `// lint: allow(rule) — why it is safe`"
                        .to_string(),
                );
                continue;
            }
            // The allow covers the comment's own lines (it may wrap) and the first
            // non-comment line after it — the statement the comment sits above.
            let mut line = c.line;
            loop {
                self.allow.entry(line).or_default().extend(rules.iter().cloned());
                if !comment_lines.contains(&line) {
                    break;
                }
                line += 1;
            }
        }
    }

    fn snippet(&self, line: u32) -> String {
        let idx = line.saturating_sub(1) as usize;
        let text = self.lines.get(idx).map_or("", |l| l.trim());
        text.chars().take(120).collect()
    }

    fn report(&mut self, rule: &'static str, line: u32, function: String, message: String) {
        if !self.seen.insert((rule, line)) {
            return;
        }
        if self.allow.get(&line).is_some_and(|rules| rules.contains(rule)) {
            self.out.allowed += 1;
            return;
        }
        self.out.findings.push(Finding {
            rule,
            file: self.path.to_string(),
            line,
            function,
            message,
            snippet: self.snippet(line),
        });
    }

    fn report_at(&mut self, rule: &'static str, tok: usize, message: String) {
        let line = self.tokens[tok].line;
        let function = self.scopes.enclosing_name(tok).to_string();
        self.report(rule, line, function, message);
    }

    fn is_keyword(text: &str) -> bool {
        RUST_KEYWORDS.contains(&text)
    }

    /// True when the token before `idx` makes a following `[` an index operation
    /// (an expression just ended) rather than a pattern, type, or literal.
    fn prev_ends_expr(&self, idx: usize) -> bool {
        let Some(prev) = idx.checked_sub(1).and_then(|p| self.tokens.get(p)) else {
            return false;
        };
        match prev.kind {
            TokenKind::Ident => !Self::is_keyword(&prev.text),
            TokenKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        }
    }

    /// Token index of the matching closer for the opener at `open`.
    fn matching(&self, open: usize, open_c: char, close_c: char) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while let Some(t) = self.tokens.get(i) {
            if t.is_punct(open_c) {
                depth += 1;
            } else if t.is_punct(close_c) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.tokens.len().saturating_sub(1)
    }

    /// `[start, end)` bounds of the statement containing `idx` (delimited by
    /// `;` / `{` / `}` at any nesting — an approximation that is tight enough for
    /// operand windows inside the small registered functions).
    fn stmt_bounds(&self, idx: usize) -> (usize, usize) {
        let is_boundary = |t: &Token| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
        let mut start = idx;
        while start > 0 && !is_boundary(&self.tokens[start - 1]) {
            start -= 1;
        }
        let mut end = idx;
        while end < self.tokens.len() && !is_boundary(&self.tokens[end]) {
            end += 1;
        }
        (start, end)
    }

    // ── rule family 1: panic-freedom in untrusted-input files ───────────────────

    fn untrusted_rules(&mut self) {
        for i in 0..self.tokens.len() {
            if self.scopes.is_test(i) {
                continue;
            }
            let tok = &self.tokens[i];
            match tok.kind {
                TokenKind::Ident if tok.text == "unwrap" || tok.text == "expect" => {
                    let method_call = i > 0
                        && self.tokens[i - 1].is_punct('.')
                        && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
                    if method_call {
                        self.report_at(
                            NO_UNWRAP,
                            i,
                            format!(
                                "`.{}()` on untrusted input can panic; return a typed error instead",
                                tok.text
                            ),
                        );
                    }
                }
                TokenKind::Ident
                    if PANIC_MACROS.contains(&tok.text.as_str())
                        && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
                {
                    self.report_at(
                        NO_PANIC,
                        i,
                        format!(
                            "`{}!` in an untrusted-input path; return a typed error instead",
                            tok.text
                        ),
                    );
                }
                TokenKind::Ident if tok.text == "as" => {
                    let target = self.tokens.get(i + 1);
                    if let Some(t) = target {
                        if t.kind == TokenKind::Ident
                            && TRUNCATING_TARGETS.contains(&t.text.as_str())
                        {
                            self.report_at(
                                TRUNCATING_CAST,
                                i,
                                format!(
                                    "truncating `as {}` cast on untrusted data; use `try_from` \
                                     or widen the type",
                                    t.text
                                ),
                            );
                        }
                    }
                }
                TokenKind::Punct if tok.text == "[" && self.prev_ends_expr(i) => {
                    self.report_at(
                        SLICE_INDEX,
                        i,
                        "direct indexing can panic on short input; use `get`/`split_first` or \
                         destructure a fixed-size array"
                            .to_string(),
                    );
                }
                _ => {}
            }
        }
    }

    // ── rule family 1b: allocation caps ─────────────────────────────────────────

    fn alloc_before_cap(&mut self) {
        for i in 0..self.tokens.len() {
            if self.scopes.is_test(i) {
                continue;
            }
            let tok = &self.tokens[i];
            // `with_capacity(expr)` / `reserve(expr)` / first arg of `resize(expr, …)`.
            let call_site = tok.kind == TokenKind::Ident
                && matches!(
                    tok.text.as_str(),
                    "with_capacity" | "reserve" | "reserve_exact" | "resize"
                )
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
            if call_site {
                let close = self.matching(i + 1, '(', ')');
                let mut end = close;
                if tok.text == "resize" {
                    // Only the first argument is a length.
                    let mut depth = 0usize;
                    for j in i + 1..close {
                        let t = &self.tokens[j];
                        if t.is_punct('(') || t.is_punct('[') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            depth -= 1;
                        } else if t.is_punct(',') && depth == 1 {
                            end = j;
                            break;
                        }
                    }
                }
                self.check_alloc_size(i, i + 2, end);
            }
            // `vec![elem; size]`.
            if tok.is_ident("vec")
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && self.tokens.get(i + 2).is_some_and(|t| t.is_punct('['))
            {
                let close = self.matching(i + 2, '[', ']');
                let mut depth = 0usize;
                for j in i + 2..close {
                    let t = &self.tokens[j];
                    if t.is_punct('[') || t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct(']') || t.is_punct(')') {
                        depth -= 1;
                    } else if t.is_punct(';') && depth == 1 {
                        self.check_alloc_size(i, j + 1, close);
                        break;
                    }
                }
            }
        }
    }

    /// Inspect the size expression in `tokens[start..end)` for an allocation at
    /// token `site`, and report unless every size identifier is capped.
    fn check_alloc_size(&mut self, site: usize, start: usize, end: usize) {
        let exprs: Vec<&Token> = self.tokens[start.min(end)..end].iter().collect();
        // Self-capping expressions: `.len()`-derived, `min`-clamped, or counts from
        // the checked `count_u32`/`count_u64` readers.
        if exprs
            .iter()
            .any(|t| t.kind == TokenKind::Ident && SIZE_SAFE_IDENTS.contains(&t.text.as_str()))
        {
            return;
        }
        let suspicious: Vec<&str> = exprs
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .filter(|name| {
                !Self::is_keyword(name)
                    && !name
                        .chars()
                        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
            })
            .collect();
        if suspicious.is_empty() {
            return;
        }
        let fn_start = self.scopes.enclosing(site).map_or(0, |f| f.start);
        for name in suspicious {
            let guarded = (fn_start..site).any(|j| {
                let t = &self.tokens[j];
                if !(t.kind == TokenKind::Ident && t.text == name) {
                    return false;
                }
                let (s, e) = self.stmt_bounds(j);
                self.tokens[s..e].iter().any(|g| {
                    g.kind == TokenKind::Ident
                        && g.text != name
                        && (GUARD_IDENTS.contains(&g.text.as_str())
                            || g.text.contains("MAX")
                            || g.text.contains("CAP")
                            || g.text.contains("LIMIT"))
                })
            });
            if !guarded {
                self.report_at(
                    ALLOC_BEFORE_CAP,
                    site,
                    format!(
                        "allocation sized by `{name}` with no visible cap; validate against a \
                         maximum (or the remaining input) before allocating"
                    ),
                );
                return;
            }
        }
    }

    // ── rule family 2: constant-time discipline ─────────────────────────────────

    fn constant_time_rules(&mut self, registry: &Registry) {
        let spans: Vec<(usize, usize, Vec<String>)> = self
            .scopes
            .functions
            .iter()
            .filter_map(|f| {
                registry
                    .lookup(self.path, &f.name)
                    .map(|entry| (f.sig_start, f.end, entry.secrets.clone()))
            })
            .collect();
        for (start, end, secrets) in spans {
            let tainted = self.propagate_taint(start, end, &secrets);
            self.secret_flow_findings(start, end, &tainted);
        }
    }

    /// Forward lexical taint propagation over `tokens[start..=end]`: two passes over
    /// `let` bindings, plain/compound assignments, and `for` patterns.
    fn propagate_taint(&self, start: usize, end: usize, secrets: &[String]) -> HashSet<String> {
        let mut tainted: HashSet<String> = secrets.iter().cloned().collect();
        for _pass in 0..2 {
            let mut i = start;
            while i <= end.min(self.tokens.len().saturating_sub(1)) {
                let tok = &self.tokens[i];
                if tok.is_ident("let") {
                    // Pattern until `=`, value until `;` (or `{` for if/while-let).
                    let in_condition =
                        i > 0 && matches!(self.tokens[i - 1].text.as_str(), "if" | "while");
                    let mut eq = i + 1;
                    while eq <= end && !self.tokens[eq].is_punct('=') {
                        eq += 1;
                    }
                    let rhs_end = self.expr_end(eq + 1, end, in_condition);
                    if self.any_tainted(eq + 1, rhs_end, &tainted) {
                        for t in &self.tokens[i + 1..eq.min(self.tokens.len())] {
                            if t.kind == TokenKind::Ident && !Self::is_keyword(&t.text) {
                                tainted.insert(t.text.clone());
                            }
                        }
                    }
                    i = rhs_end;
                    continue;
                }
                if tok.is_ident("for") {
                    let mut in_kw = i + 1;
                    while in_kw <= end && !self.tokens[in_kw].is_ident("in") {
                        in_kw += 1;
                    }
                    let expr_end = self.expr_end(in_kw + 1, end, true);
                    if self.any_tainted(in_kw + 1, expr_end, &tainted) {
                        for t in &self.tokens[i + 1..in_kw.min(self.tokens.len())] {
                            if t.kind == TokenKind::Ident && !Self::is_keyword(&t.text) {
                                tainted.insert(t.text.clone());
                            }
                        }
                    }
                    i = expr_end;
                    continue;
                }
                // Plain or compound assignment outside a `let`.
                if tok.is_punct('=') {
                    let prev = i.checked_sub(1).map(|p| self.tokens[p].text.clone());
                    let next_is_eq = self.tokens.get(i + 1).is_some_and(|t| t.is_punct('='));
                    let prev_cmp = matches!(prev.as_deref(), Some("=" | "<" | ">" | "!"));
                    if !next_is_eq && !prev_cmp {
                        let compound = matches!(
                            prev.as_deref(),
                            Some("+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
                        );
                        let lhs_end = if compound { i - 1 } else { i };
                        let (stmt_start, _) = self.stmt_bounds(i);
                        let rhs_end = self.expr_end(i + 1, end, false);
                        if self.any_tainted(i + 1, rhs_end, &tainted) {
                            // `w[i] = secret` taints `w`, not the index `i`: skip
                            // identifiers inside bracket pairs on the left side.
                            let mut bracket = 0i32;
                            for t in &self.tokens[stmt_start..lhs_end] {
                                if t.is_punct('[') {
                                    bracket += 1;
                                } else if t.is_punct(']') {
                                    bracket -= 1;
                                } else if bracket == 0
                                    && t.kind == TokenKind::Ident
                                    && !Self::is_keyword(&t.text)
                                {
                                    tainted.insert(t.text.clone());
                                }
                            }
                        }
                    }
                }
                i += 1;
            }
        }
        tainted
    }

    /// End of the expression starting at `from`: the first `;` (or `{` when
    /// `stop_at_brace`) with parens, brackets, and inner braces balanced.
    fn expr_end(&self, from: usize, limit: usize, stop_at_brace: bool) -> usize {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        let mut i = from;
        while i <= limit.min(self.tokens.len().saturating_sub(1)) {
            let t = &self.tokens[i];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if stop_at_brace && paren == 0 && bracket == 0 && brace == 0 => return i,
                    "{" => brace += 1,
                    "}" if brace == 0 => return i,
                    "}" => brace -= 1,
                    ";" if paren == 0 && bracket == 0 && brace == 0 => return i,
                    _ => {}
                }
            }
            if paren < 0 || bracket < 0 {
                return i;
            }
            i += 1;
        }
        i
    }

    fn any_tainted(&self, start: usize, end: usize, tainted: &HashSet<String>) -> bool {
        self.first_tainted(start, end, tainted).is_some()
    }

    fn first_tainted(&self, start: usize, end: usize, tainted: &HashSet<String>) -> Option<String> {
        self.tokens
            .get(start..end.min(self.tokens.len()))?
            .iter()
            .find(|t| t.kind == TokenKind::Ident && tainted.contains(&t.text))
            .map(|t| t.text.clone())
    }

    fn secret_flow_findings(&mut self, start: usize, end: usize, tainted: &HashSet<String>) {
        let mut i = start;
        while i <= end.min(self.tokens.len().saturating_sub(1)) {
            let tok = &self.tokens[i];
            match tok.kind {
                TokenKind::Ident if matches!(tok.text.as_str(), "if" | "while" | "match") => {
                    let kind = tok.text.clone();
                    let cond_end = self.expr_end(i + 1, end, true);
                    if let Some(name) = self.first_tainted(i + 1, cond_end, tainted) {
                        self.report_at(
                            SECRET_BRANCH,
                            i,
                            format!("`{kind}` on secret-derived `{name}`: branch timing leaks it"),
                        );
                    }
                }
                // Try-operator (not `?Sized`): preceded by an expression end.
                TokenKind::Punct if tok.text == "?" && self.prev_ends_expr(i) => {
                    let (s, _) = self.stmt_bounds(i);
                    if let Some(name) = self.first_tainted(s, i, tainted) {
                        self.report_at(
                            SECRET_BRANCH,
                            i,
                            format!(
                                "`?` early-return on a result derived from secret `{name}`: \
                                 error timing leaks it"
                            ),
                        );
                    }
                }
                TokenKind::Punct
                    if (tok.text == "%" || tok.text == "/") && self.prev_ends_expr(i) =>
                {
                    let (s, e) = self.stmt_bounds(i);
                    if let Some(name) = self.first_tainted(s, e, tainted) {
                        self.report_at(
                            SECRET_DIVMOD,
                            i,
                            format!(
                                "`{}` with secret-derived `{name}` in scope: division is \
                                 variable-time on most CPUs",
                                tok.text
                            ),
                        );
                    }
                }
                TokenKind::Ident
                    if DIVMOD_METHODS.contains(&tok.text.as_str())
                        && i > 0
                        && self.tokens[i - 1].is_punct('.')
                        && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
                {
                    let (s, e) = self.stmt_bounds(i);
                    if let Some(name) = self.first_tainted(s, e, tainted) {
                        self.report_at(
                            SECRET_DIVMOD,
                            i,
                            format!(
                                "`.{}(…)` with secret-derived `{name}` in scope: division is \
                                 variable-time on most CPUs",
                                tok.text
                            ),
                        );
                    }
                }
                TokenKind::Punct if tok.text == "[" && self.prev_ends_expr(i) => {
                    let close = self.matching(i, '[', ']');
                    if let Some(name) = self.first_tainted(i + 1, close, tainted) {
                        self.report_at(
                            SECRET_INDEX,
                            i,
                            format!(
                                "table load indexed by secret-derived `{name}`: cache timing \
                                 leaks the index"
                            ),
                        );
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    // ── rule family 3: hygiene ──────────────────────────────────────────────────

    fn hygiene_rules(&mut self, flags: FileFlags) {
        for i in 0..self.tokens.len() {
            if self.scopes.is_test(i) {
                continue;
            }
            let tok = &self.tokens[i];
            if flags.planning
                && tok.is_ident("thread_local")
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                self.report_at(
                    THREAD_LOCAL,
                    i,
                    "no new `thread_local!` caches in planning code: they defeat the \
                     interned-relation sharing model and leak across plans"
                        .to_string(),
                );
            }
            if !flags.seed_authority
                && tok.is_ident("chunk_seed")
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                && !(i > 0 && self.tokens[i - 1].is_ident("fn"))
            {
                self.report_at(
                    CHUNK_SEED,
                    i,
                    "per-chunk seeds must be derived inside a `lint: chunk-seed-authority` \
                     file; deriving them ad hoc breaks the nonce-domain discipline"
                        .to_string(),
                );
            }
        }
        self.reseed_rule();
        if flags.crate_root {
            let has_forbid = self.tokens.iter().any(|t| t.is_ident("forbid"))
                && self.tokens.iter().any(|t| t.is_ident("unsafe_code"));
            if !has_forbid {
                self.report(
                    MISSING_FORBID_UNSAFE,
                    1,
                    String::new(),
                    "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                );
            }
        }
    }

    fn reseed_rule(&mut self) {
        let spans: Vec<(usize, usize, usize, u32)> = self
            .scopes
            .functions
            .iter()
            .filter(|f| f.name == "reseeded" && !f.is_test)
            .map(|f| (f.sig_start, f.start, f.end, f.line))
            .collect();
        for (sig, body, end, line) in spans {
            // Parameters live between the signature's first `(…)` pair.
            let mut open = sig;
            while open < body && !self.tokens[open].is_punct('(') {
                open += 1;
            }
            let close = self.matching(open, '(', ')');
            let params = &self.tokens[open..close.min(body)];
            let ignored = params.iter().any(|t| t.is_ident("_seed"));
            let named = params.iter().any(|t| t.is_ident("seed"));
            let used = named
                && self.tokens[body..=end.min(self.tokens.len().saturating_sub(1))]
                    .iter()
                    .any(|t| t.is_ident("seed"));
            if ignored || (named && !used) {
                self.report(
                    RESEED_USES_SEED,
                    line,
                    "reseeded".to_string(),
                    "`reseeded` must derive its state from the seed parameter; a ChunkedScheme \
                     that ignores it reuses randomness across chunks"
                        .to_string(),
                );
            }
        }
    }
}
