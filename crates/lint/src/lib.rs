//! `f2_lint` — repo-aware static analysis for the F² workspace.
//!
//! F² carries invariants that `rustc` and `clippy` cannot know about: frame and CSV
//! parsers must never panic on hostile bytes, the Paillier/Montgomery/AES paths
//! must not branch or index on key material, per-chunk cipher seeds must flow
//! through one authority, and planning code must not grow hidden `thread_local!`
//! state. This crate encodes those invariants as lint rules and enforces them in
//! CI.
//!
//! # Design
//!
//! The analyzer is deliberately **dependency-free** — a hand-rolled [`lexer`], a
//! brace-matching [`scope`] pass, and lexical [`rules`] — rather than a `syn`-based
//! AST walker. That keeps the workspace's vendored-shims-only policy intact, lets
//! the lint build before (and independently of) every crate it checks, and is
//! sufficient: every rule here is decidable from tokens plus function extents.
//!
//! # Workflow
//!
//! * `cargo run -p f2-lint` — analyze, print diagnostics, write `LINT_report.json`.
//! * `cargo run -p f2-lint -- --check` — same, but exit non-zero on findings not
//!   covered by the committed `LINT_baseline.json` (the CI mode).
//! * `cargo run -p f2-lint -- --update-baseline` — accept current findings as the
//!   new debt baseline.
//!
//! Suppression inside source is per-line and must carry a reason:
//!
//! ```text
//! // lint: allow(slice-index) — index masked to 8 bits into a fixed 256-entry table
//! ```
//!
//! Scope annotations opt files into rule families: `//! lint: untrusted-input`
//! (panic-freedom rules), `//! lint: planning` (thread-local rule; crate-wide when
//! on a `lib.rs`), `//! lint: chunk-seed-authority` (may call `chunk_seed`). The
//! constant-time rules instead key off the committed registry at
//! `crates/lint/secret_functions.reg` — see [`registry`].
//!
//! See `docs/STATIC_ANALYSIS.md` for the full rule catalogue and workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod baseline;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod scope;

pub use analyzer::{analyze, analyze_source, find_workspace_root, Analysis, REGISTRY_PATH};
pub use baseline::{report_json, Baseline};
pub use registry::Registry;
pub use rules::{CheckResult, FileFlags, Finding};
