//! TPC-H-style `ORDERS` generator (9 attributes).
//!
//! The structural properties that matter for reproducing the paper's Orders results:
//!
//! * several attributes with *tiny* domains — `OrderStatus` (3 values), `OrderPriority`
//!   (5), `ShipPriority` (constant) — so that equivalence classes collide heavily and
//!   the GROUP step has to inject fake ECs (Figure 9(b));
//! * moderate-domain attributes (`OrderDate`, `Clerk`, a bucketed `TotalPrice`) so that
//!   MASs of four-to-five attributes exist and overlap pairwise (§5.1);
//! * unique attributes (`OrderKey`, `Comment`) outside every MAS.

use crate::distributions::{TextPool, Zipf};
use f2_relation::{Attribute, DataType, Record, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Orders generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdersConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Number of distinct customers.
    pub customers: usize,
    /// Number of distinct order dates.
    pub dates: usize,
    /// Number of distinct clerks.
    pub clerks: usize,
    /// Number of distinct (bucketed) total prices.
    pub price_buckets: usize,
    /// Zipf skew applied to categorical attributes.
    pub skew: f64,
}

impl Default for OrdersConfig {
    fn default() -> Self {
        OrdersConfig {
            rows: 10_000,
            seed: 42,
            customers: 1_500,
            dates: 60,
            clerks: 25,
            price_buckets: 80,
            skew: 0.8,
        }
    }
}

/// Generator for the Orders dataset.
#[derive(Debug, Clone)]
pub struct OrdersGenerator {
    config: OrdersConfig,
}

impl OrdersGenerator {
    /// Create a generator.
    pub fn new(config: OrdersConfig) -> Self {
        OrdersGenerator { config }
    }

    /// The Orders schema (9 attributes, mirroring TPC-H ORDERS).
    pub fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("OrderKey", DataType::Int),
            Attribute::new("CustKey", DataType::Int),
            Attribute::new("OrderStatus", DataType::Text),
            Attribute::new("TotalPrice", DataType::Decimal),
            Attribute::new("OrderDate", DataType::Date),
            Attribute::new("OrderPriority", DataType::Text),
            Attribute::new("Clerk", DataType::Text),
            Attribute::new("ShipPriority", DataType::Int),
            Attribute::new("Comment", DataType::Text),
        ])
        .expect("static schema is valid")
    }

    /// Generate the table.
    pub fn generate(&self) -> Table {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let statuses = ["F", "O", "P"];
        let priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
        let status_dist = Zipf::new(statuses.len(), c.skew);
        let priority_dist = Zipf::new(priorities.len(), c.skew);
        let date_dist = Zipf::new(c.dates.max(1), c.skew);
        let clerk_pool = TextPool::new("Clerk#", c.clerks.max(1));
        let clerk_dist = Zipf::new(c.clerks.max(1), c.skew);
        let price_dist = Zipf::new(c.price_buckets.max(1), c.skew);
        let comment_pool = TextPool::new("comment", usize::MAX / 2);

        let mut records = Vec::with_capacity(c.rows);
        for i in 0..c.rows {
            let status = statuses[status_dist.sample(&mut rng)];
            let priority = priorities[priority_dist.sample(&mut rng)];
            let date = date_dist.sample(&mut rng) as i32 + 8_000;
            let clerk = clerk_pool.get(clerk_dist.sample(&mut rng));
            let price_bucket = price_dist.sample(&mut rng) as i64;
            let custkey = (rng.next_u64() % c.customers.max(1) as u64) as i64 + 1;
            records.push(Record::new(vec![
                Value::Int(i as i64 + 1),
                Value::Int(custkey),
                Value::text(status),
                Value::money((price_bucket + 1) * 13_750),
                Value::Date(date),
                Value::text(priority),
                Value::text(clerk),
                Value::Int(0),
                Value::text(comment_pool.get(i)),
            ]));
        }
        Table::new(Self::schema(), records).expect("generated rows match the schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::AttrSet;

    #[test]
    fn schema_matches_table_1() {
        assert_eq!(OrdersGenerator::schema().arity(), 9);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = OrdersConfig { rows: 200, seed: 7, ..OrdersConfig::default() };
        let a = OrdersGenerator::new(cfg).generate();
        let b = OrdersGenerator::new(cfg).generate();
        assert_eq!(a, b);
        let c = OrdersGenerator::new(OrdersConfig { seed: 8, ..cfg }).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn domain_sizes_match_the_papers_description() {
        let t = OrdersGenerator::new(OrdersConfig { rows: 3_000, ..OrdersConfig::default() })
            .generate();
        let schema = t.schema().clone();
        let status = schema.index_of("OrderStatus").unwrap();
        let priority = schema.index_of("OrderPriority").unwrap();
        let ship = schema.index_of("ShipPriority").unwrap();
        let key = schema.index_of("OrderKey").unwrap();
        // "the OrderStatus and OrderPriority attributes only have 3 and 5 unique values"
        assert_eq!(t.distinct_count(status), 3);
        assert_eq!(t.distinct_count(priority), 5);
        assert_eq!(t.distinct_count(ship), 1);
        assert_eq!(t.distinct_count(key), 3_000);
    }

    #[test]
    fn orders_has_overlapping_small_domain_structure() {
        let t = OrdersGenerator::new(OrdersConfig { rows: 2_000, ..OrdersConfig::default() })
            .generate();
        let schema = t.schema().clone();
        // {OrderStatus, OrderPriority, ShipPriority} must be non-unique (heavy collisions).
        let set = schema.attr_set(["OrderStatus", "OrderPriority", "ShipPriority"]).unwrap();
        assert!(t.partition(set).has_duplicates());
        // The unique key on its own is never part of a MAS.
        let key = AttrSet::single(schema.index_of("OrderKey").unwrap());
        assert!(!t.partition(key).has_duplicates());
    }

    #[test]
    fn row_count_and_size_scale() {
        let small =
            OrdersGenerator::new(OrdersConfig { rows: 100, ..OrdersConfig::default() }).generate();
        let large =
            OrdersGenerator::new(OrdersConfig { rows: 400, ..OrdersConfig::default() }).generate();
        assert_eq!(small.row_count(), 100);
        assert_eq!(large.row_count(), 400);
        assert!(large.size_bytes() > small.size_bytes() * 3);
    }
}
