//! # f2-datagen — workload generators for the F² evaluation
//!
//! The paper evaluates F² on two TPC benchmark tables and one synthetic dataset
//! (Table 1):
//!
//! | dataset   | attributes | tuples | size    |
//! |-----------|-----------:|-------:|---------|
//! | Orders    | 9          | 15 M   | 1.64 GB |
//! | Customer  | 21         | 0.96 M | 282 MB  |
//! | Synthetic | 7          | 4 M    | 224 MB  |
//!
//! We do not have the authors' dumps, so this crate generates datasets with the same
//! *structural* properties (schema shape, per-attribute domain cardinalities, overlap
//! structure of the maximal attribute sets, planted FDs), scaled to row counts that are
//! practical on a development machine. The benchmark harness sweeps the row count, so
//! the paper's size-scaling figures keep their shape. See DESIGN.md ("Substitutions").
//!
//! * [`orders`] — a TPC-H-style `ORDERS` table: 9 attributes, several small-domain
//!   columns (`OrderStatus` with 3 values, `OrderPriority` with 5, a constant
//!   `ShipPriority`), which is what gives the real Orders dataset its many overlapping
//!   MASs and heavy EC collisions (the paper's explanation of Figure 9(b)).
//! * [`customer`] — a TPC-C-style `CUSTOMER` table: 21 attributes, high-cardinality
//!   `C_LAST`/`C_BALANCE` (the paper quotes "more than 4,000 unique values across
//!   120,000 records"), plus planted address FDs (`ZIP → CITY`, `ZIP → STATE`,
//!   `CITY → STATE`) so the data-cleaning example has something to discover.
//! * [`synthetic`] — a parameterised table with two overlapping MASs and a huge number
//!   of equivalence classes, reproducing the workload that makes the SSE step dominate
//!   in Figures 6(a)/7(a).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod customer;
pub mod distributions;
pub mod orders;
pub mod synthetic;

pub use customer::{CustomerConfig, CustomerGenerator};
pub use distributions::{TextPool, Zipf};
pub use orders::{OrdersConfig, OrdersGenerator};
pub use synthetic::{SyntheticConfig, SyntheticGenerator};

use f2_relation::Table;

/// A named dataset used by the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// TPC-H-style Orders.
    Orders,
    /// TPC-C-style Customer.
    Customer,
    /// Synthetic two-MAS dataset.
    Synthetic,
}

impl Dataset {
    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Orders => "Orders",
            Dataset::Customer => "Customer",
            Dataset::Synthetic => "Synthetic",
        }
    }

    /// Generate the dataset with the given row count and seed, using each generator's
    /// default structural parameters.
    pub fn generate(&self, rows: usize, seed: u64) -> Table {
        match self {
            Dataset::Orders => {
                OrdersGenerator::new(OrdersConfig { rows, seed, ..OrdersConfig::default() })
                    .generate()
            }
            Dataset::Customer => {
                CustomerGenerator::new(CustomerConfig { rows, seed, ..CustomerConfig::default() })
                    .generate()
            }
            Dataset::Synthetic => SyntheticGenerator::new(SyntheticConfig {
                rows,
                seed,
                ..SyntheticConfig::default()
            })
            .generate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names() {
        assert_eq!(Dataset::Orders.name(), "Orders");
        assert_eq!(Dataset::Customer.name(), "Customer");
        assert_eq!(Dataset::Synthetic.name(), "Synthetic");
    }

    #[test]
    fn dataset_generate_dispatches() {
        assert_eq!(Dataset::Orders.generate(50, 1).arity(), 9);
        assert_eq!(Dataset::Customer.generate(50, 1).arity(), 21);
        assert_eq!(Dataset::Synthetic.generate(50, 1).arity(), 7);
    }
}
