//! Synthetic dataset with a controlled MAS structure (Table 1, "Synthetic").
//!
//! The paper's synthetic dataset has 7 attributes and exactly two MASs that overlap at
//! one attribute; its distinguishing property is a *very large number of equivalence
//! classes* (up to ~1 M), which makes the splitting-and-scaling step dominate the
//! encryption time (Figures 6(a) and 7(a)). This generator reproduces that structure:
//!
//! * attributes `S0,S1,S2` form the first MAS (small-to-medium domains),
//! * attributes `S2,…,S6` form the second MAS (moderate domains, so the number of ECs
//!   grows roughly linearly with the row count),
//! * the two MASs overlap exactly at `S2`,
//! * an FD `S0 → S1` is planted inside the first MAS and `S3 → S4` inside the second.
//!
//! The paper states sizes of three and six attributes for the two MASs; with only seven
//! attributes and a single-attribute overlap that arithmetic does not close (3 + 6 − 1
//! = 8), so we use sizes three and five — the overlap structure and EC counts, which are
//! what drive the measured behaviour, are preserved. Documented in EXPERIMENTS.md.

use f2_relation::{Attribute, DataType, Record, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Domain size of `S0` (first MAS); `S1` is derived from it via the planted FD.
    pub domain_a: usize,
    /// Domain size of `S2` (the overlap attribute).
    pub domain_overlap: usize,
    /// Approximate number of equivalence classes of the second MAS per 1,000 rows —
    /// the knob that reproduces the "many ECs" property.
    pub ec_density: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            rows: 10_000,
            seed: 42,
            domain_a: 400,
            domain_overlap: 50,
            ec_density: 350,
        }
    }
}

/// Generator for the synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: SyntheticConfig,
}

impl SyntheticGenerator {
    /// Create a generator.
    pub fn new(config: SyntheticConfig) -> Self {
        SyntheticGenerator { config }
    }

    /// The 7-attribute schema.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("S0", DataType::Int),
            Attribute::new("S1", DataType::Int),
            Attribute::new("S2", DataType::Int),
            Attribute::new("S3", DataType::Int),
            Attribute::new("S4", DataType::Int),
            Attribute::new("S5", DataType::Int),
            Attribute::new("S6", DataType::Int),
        ])
        .expect("static schema is valid")
    }

    /// Generate the table.
    pub fn generate(&self) -> Table {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let rows = c.rows;
        // Second-MAS equivalence classes: each class id determines S3..S6 jointly so the
        // projection on {S2..S6} repeats for rows sharing a class id.
        let target_classes = ((rows * c.ec_density) / 1_000).max(1);
        let mut records = Vec::with_capacity(rows);
        // Full rows must be unique (otherwise the full schema itself would become a
        // MAS); reject (S0, class) pairs that were already emitted.
        let mut seen: std::collections::HashSet<(i64, u64)> = std::collections::HashSet::new();
        for row_idx in 0..rows {
            let (a, class) = loop {
                let a = (rng.next_u64() % c.domain_a.max(1) as u64) as i64;
                let class = rng.next_u64() % target_classes as u64;
                if seen.insert((a, class)) {
                    break (a, class);
                }
                if seen.len() >= c.domain_a.max(1) * target_classes {
                    // Domain exhausted: fall back to a guaranteed-fresh pair.
                    let fresh = (c.domain_a as i64) + row_idx as i64;
                    break (fresh, class);
                }
            };
            // Planted FD S0 → S1.
            let b = (a * 7 + 3) % (c.domain_a.max(1) as i64);
            let overlap = (class % c.domain_overlap.max(1) as u64) as i64;
            let s3 = (class % 1_000) as i64;
            // Planted FD S3 → S4.
            let s4 = (s3 * 13 + 1) % 997;
            let s5 = (class / 1_000) as i64;
            let s6 = ((class % 7_919) as i64) * 3;
            records.push(Record::new(vec![
                Value::Int(a),
                Value::Int(b),
                Value::Int(overlap),
                Value::Int(s3),
                Value::Int(s4),
                Value::Int(s5),
                Value::Int(s6),
            ]));
        }
        Table::new(Self::schema(), records).expect("generated rows match the schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::AttrSet;

    #[test]
    fn schema_has_seven_attributes() {
        assert_eq!(SyntheticGenerator::schema().arity(), 7);
    }

    #[test]
    fn deterministic_generation() {
        let cfg = SyntheticConfig { rows: 300, seed: 5, ..SyntheticConfig::default() };
        assert_eq!(
            SyntheticGenerator::new(cfg).generate(),
            SyntheticGenerator::new(cfg).generate()
        );
    }

    #[test]
    fn planted_fds_hold() {
        let t =
            SyntheticGenerator::new(SyntheticConfig { rows: 3_000, ..SyntheticConfig::default() })
                .generate();
        // S0 → S1: rows agreeing on S0 agree on S1 (S1 is a function of S0).
        let p0 = t.partition(AttrSet::single(0));
        let p01 = t.partition(AttrSet::from_indices([0, 1]));
        assert_eq!(p0.class_count(), p01.class_count());
        // S3 → S4 likewise.
        let p3 = t.partition(AttrSet::single(3));
        let p34 = t.partition(AttrSet::from_indices([3, 4]));
        assert_eq!(p3.class_count(), p34.class_count());
    }

    #[test]
    fn two_mas_structure() {
        let t =
            SyntheticGenerator::new(SyntheticConfig { rows: 4_000, ..SyntheticConfig::default() })
                .generate();
        // First MAS candidate {S0,S1,S2} is non-unique; second {S2..S6} is non-unique;
        // and the full schema is unique (no duplicated complete rows w.h.p.).
        assert!(t.partition(AttrSet::from_indices([0, 1, 2])).has_duplicates());
        assert!(t.partition(AttrSet::from_indices([2, 3, 4, 5, 6])).has_duplicates());
        assert!(!t.partition(AttrSet::all(7)).has_duplicates());
    }

    #[test]
    fn ec_density_knob_controls_class_count() {
        let sparse = SyntheticGenerator::new(SyntheticConfig {
            rows: 4_000,
            ec_density: 50,
            ..SyntheticConfig::default()
        })
        .generate();
        let dense = SyntheticGenerator::new(SyntheticConfig {
            rows: 4_000,
            ec_density: 700,
            ..SyntheticConfig::default()
        })
        .generate();
        let attrs = AttrSet::from_indices([2, 3, 4, 5, 6]);
        let sparse_classes = sparse.partition(attrs).class_count();
        let dense_classes = dense.partition(attrs).class_count();
        assert!(
            dense_classes > sparse_classes * 2,
            "dense {dense_classes} vs sparse {sparse_classes}"
        );
    }
}
