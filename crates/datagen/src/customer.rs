//! TPC-C-style `CUSTOMER` generator (21 attributes).
//!
//! The paper's Customer dataset has 21 attributes and 0.96 M rows (Table 1) — that is
//! the TPC-C customer table. The properties this generator reproduces:
//!
//! * high-cardinality attributes inside the MASs ("both the C_Last and C_Balance
//!   attribute have more than 4,000 unique values across 120,000 records"), which keeps
//!   EC collisions — and hence the GROUP overhead of Figure 9(a) — small;
//! * constant / tiny-domain bookkeeping columns (`C_MIDDLE`, `C_CREDIT`,
//!   `C_PAYMENT_CNT`, …) that make the MASs wide (9–12 attributes, §5.1);
//! * planted address dependencies `ZIP → CITY`, `ZIP → STATE`, `CITY → STATE` so the
//!   data-cleaning / schema-refinement examples have realistic FDs to discover.

use crate::distributions::{tpcc_last_name, TextPool, Zipf};
use f2_relation::{Attribute, DataType, Record, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Customer generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CustomerConfig {
    /// Number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of warehouses (C_W_ID domain).
    pub warehouses: usize,
    /// Number of distinct cities (each city belongs to exactly one state).
    pub cities: usize,
    /// Number of distinct ZIP codes (each ZIP belongs to exactly one city).
    pub zips: usize,
    /// Zipf skew for categorical attributes.
    pub skew: f64,
}

impl Default for CustomerConfig {
    fn default() -> Self {
        CustomerConfig {
            rows: 10_000,
            seed: 42,
            warehouses: 8,
            cities: 200,
            zips: 1_000,
            skew: 0.7,
        }
    }
}

/// Generator for the Customer dataset.
#[derive(Debug, Clone)]
pub struct CustomerGenerator {
    config: CustomerConfig,
}

impl CustomerGenerator {
    /// Create a generator.
    pub fn new(config: CustomerConfig) -> Self {
        CustomerGenerator { config }
    }

    /// The 21-attribute TPC-C customer schema.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("C_ID", DataType::Int),
            Attribute::new("C_D_ID", DataType::Int),
            Attribute::new("C_W_ID", DataType::Int),
            Attribute::new("C_FIRST", DataType::Text),
            Attribute::new("C_MIDDLE", DataType::Text),
            Attribute::new("C_LAST", DataType::Text),
            Attribute::new("C_STREET_1", DataType::Text),
            Attribute::new("C_STREET_2", DataType::Text),
            Attribute::new("C_CITY", DataType::Text),
            Attribute::new("C_STATE", DataType::Text),
            Attribute::new("C_ZIP", DataType::Text),
            Attribute::new("C_PHONE", DataType::Text),
            Attribute::new("C_SINCE", DataType::Date),
            Attribute::new("C_CREDIT", DataType::Text),
            Attribute::new("C_CREDIT_LIM", DataType::Decimal),
            Attribute::new("C_DISCOUNT", DataType::Decimal),
            Attribute::new("C_BALANCE", DataType::Decimal),
            Attribute::new("C_YTD_PAYMENT", DataType::Decimal),
            Attribute::new("C_PAYMENT_CNT", DataType::Int),
            Attribute::new("C_DELIVERY_CNT", DataType::Int),
            Attribute::new("C_DATA", DataType::Text),
        ])
        .expect("static schema is valid")
    }

    /// Generate the table.
    pub fn generate(&self) -> Table {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let states = [
            "NJ", "NY", "CA", "TX", "FL", "WA", "IL", "MA", "PA", "OH", "GA", "NC", "MI", "VA",
            "AZ", "CO",
        ];
        let city_pool = TextPool::new("city", c.cities.max(1));
        let street_pool = TextPool::new("street", 5_000);
        let first_pool = TextPool::new("first", 4_000);
        let data_pool = TextPool::new("history", usize::MAX / 2);
        let zip_dist = Zipf::new(c.zips.max(1), c.skew);
        let last_dist = Zipf::new(1_000, c.skew);
        let since_dist = Zipf::new(400, c.skew);
        let discount_dist = Zipf::new(50, 0.0);
        let credits = ["GC", "BC"];
        let credit_dist = Zipf::new(2, c.skew);

        let mut records = Vec::with_capacity(c.rows);
        for i in 0..c.rows {
            // The address hierarchy guarantees ZIP → CITY → STATE.
            let zip_idx = zip_dist.sample(&mut rng);
            let city_idx = zip_idx % c.cities.max(1);
            let state = states[city_idx % states.len()];
            let zip = format!("{:05}11", zip_idx);
            let d_id = (i % 10) as i64 + 1;
            let w_id = (rng.next_u64() % c.warehouses.max(1) as u64) as i64 + 1;
            let balance_cents = ((rng.next_u64() % 900_000) as i64) - 100_000;
            records.push(Record::new(vec![
                Value::Int((i / 10) as i64 + 1),
                Value::Int(d_id),
                Value::Int(w_id),
                Value::text(first_pool.get((rng.next_u64() % 4_000) as usize)),
                Value::text("OE"),
                Value::text(format!(
                    "{}{}",
                    tpcc_last_name(last_dist.sample(&mut rng)),
                    rng.next_u64() % 8
                )),
                Value::text(street_pool.get((rng.next_u64() % 5_000) as usize)),
                Value::text(street_pool.get((rng.next_u64() % 5_000) as usize)),
                Value::text(city_pool.get(city_idx)),
                Value::text(state),
                Value::text(zip),
                Value::text(format!("{:010}", rng.next_u64() % 10_000_000_000)),
                Value::Date(since_dist.sample(&mut rng) as i32 + 10_000),
                Value::text(credits[credit_dist.sample(&mut rng)]),
                Value::money(5_000_000),
                Value::money(discount_dist.sample(&mut rng) as i64),
                Value::money(balance_cents),
                Value::money(10_00),
                Value::Int(1 + (rng.next_u64() % 3) as i64),
                Value::Int((rng.next_u64() % 2) as i64),
                Value::text(data_pool.get(i)),
            ]));
        }
        Table::new(Self::schema(), records).expect("generated rows match the schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_fd_shim::*;

    /// A tiny shim so the tests below read naturally without depending on f2-fd
    /// (which would create a dev-dependency cycle).
    mod f2_fd_shim {
        use f2_relation::{AttrSet, Partition, Table};
        pub fn fd_holds(t: &Table, lhs: AttrSet, rhs: usize) -> bool {
            let p = Partition::compute(t, lhs);
            for class in p.classes() {
                if class.size() < 2 {
                    continue;
                }
                let first = t.row(class.rows[0]).unwrap().get(rhs).cloned();
                for &r in &class.rows[1..] {
                    if t.row(r).unwrap().get(rhs).cloned() != first {
                        return false;
                    }
                }
            }
            true
        }
    }

    #[test]
    fn schema_has_21_attributes() {
        assert_eq!(CustomerGenerator::schema().arity(), 21);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CustomerConfig { rows: 150, seed: 3, ..CustomerConfig::default() };
        assert_eq!(CustomerGenerator::new(cfg).generate(), CustomerGenerator::new(cfg).generate());
    }

    #[test]
    fn planted_address_fds_hold() {
        let t = CustomerGenerator::new(CustomerConfig { rows: 2_000, ..CustomerConfig::default() })
            .generate();
        let s = t.schema().clone();
        let zip = s.index_of("C_ZIP").unwrap();
        let city = s.index_of("C_CITY").unwrap();
        let state = s.index_of("C_STATE").unwrap();
        use f2_relation::AttrSet;
        assert!(fd_holds(&t, AttrSet::single(zip), city));
        assert!(fd_holds(&t, AttrSet::single(zip), state));
        assert!(fd_holds(&t, AttrSet::single(city), state));
        // CITY does not determine ZIP (many ZIPs per city).
        assert!(!fd_holds(&t, AttrSet::single(city), zip));
    }

    #[test]
    fn high_cardinality_attributes() {
        let t = CustomerGenerator::new(CustomerConfig { rows: 5_000, ..CustomerConfig::default() })
            .generate();
        let s = t.schema().clone();
        // C_LAST and C_BALANCE have large domains relative to the row count.
        assert!(t.distinct_count(s.index_of("C_LAST").unwrap()) > 1_000);
        assert!(t.distinct_count(s.index_of("C_BALANCE").unwrap()) > 3_000);
        // Constant / tiny-domain attributes.
        assert_eq!(t.distinct_count(s.index_of("C_MIDDLE").unwrap()), 1);
        assert_eq!(t.distinct_count(s.index_of("C_CREDIT").unwrap()), 2);
    }

    #[test]
    fn row_count_is_respected() {
        let t = CustomerGenerator::new(CustomerConfig { rows: 321, ..CustomerConfig::default() })
            .generate();
        assert_eq!(t.row_count(), 321);
    }
}
