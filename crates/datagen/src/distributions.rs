//! Sampling helpers shared by the generators.

use rand::Rng;

/// A Zipf(θ) sampler over ranks `1..=n`.
///
/// TPC workloads and real relational data are heavily skewed; the frequency analysis
/// attack the paper defends against is only interesting when value frequencies are
/// uneven, so the generators draw categorical values from a Zipf distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `n` ranks with exponent `theta` (0 = uniform).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            let w = 1.0 / (rank as f64).powf(theta);
            total += w;
            weights.push(total);
        }
        let cdf = weights.into_iter().map(|w| w / total).collect();
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (0 is the most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u = (rng.next_u64() as f64) / (u64::MAX as f64);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }
}

/// A pool of synthetic categorical strings, e.g. `city_017`.
#[derive(Debug, Clone)]
pub struct TextPool {
    prefix: String,
    size: usize,
}

impl TextPool {
    /// Create a pool of `size` distinct strings sharing a prefix.
    pub fn new(prefix: impl Into<String>, size: usize) -> Self {
        assert!(size > 0);
        TextPool { prefix: prefix.into(), size }
    }

    /// The string at a given index (wraps around).
    pub fn get(&self, index: usize) -> String {
        format!("{}_{:05}", self.prefix, index % self.size)
    }

    /// Draw a uniformly random member.
    pub fn sample(&self, rng: &mut impl Rng) -> String {
        self.get((rng.next_u64() % self.size as u64) as usize)
    }

    /// Number of distinct members.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// The TPC-C `C_LAST` name generator: three syllables indexed by a number 0..999.
pub fn tpcc_last_name(index: usize) -> String {
    const SYLLABLES: [&str; 10] =
        ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];
    let i = index % 1000;
    format!("{}{}{}", SYLLABLES[i / 100], SYLLABLES[(i / 10) % 10], SYLLABLES[i % 10])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.0);
        assert_eq!(z.ranks(), 100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must be sampled far more often than rank 99.
        assert!(counts[0] > counts[99] * 5, "{} vs {}", counts[0], counts[99]);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "uniform-ish expected, got {c}");
        }
    }

    #[test]
    fn text_pool() {
        let p = TextPool::new("city", 10);
        assert_eq!(p.get(3), "city_00003");
        assert_eq!(p.get(13), "city_00003");
        assert_eq!(p.size(), 10);
        let mut rng = StdRng::seed_from_u64(3);
        let v = p.sample(&mut rng);
        assert!(v.starts_with("city_"));
    }

    #[test]
    fn tpcc_names() {
        assert_eq!(tpcc_last_name(0), "BARBARBAR");
        assert_eq!(tpcc_last_name(999), "EINGEINGEING");
        assert_eq!(tpcc_last_name(371), "PRICALLYOUGHT");
        assert_eq!(tpcc_last_name(1371), tpcc_last_name(371));
        // Exactly 1000 distinct names.
        let distinct: std::collections::HashSet<String> = (0..2000).map(tpcc_last_name).collect();
        assert_eq!(distinct.len(), 1000);
    }
}
