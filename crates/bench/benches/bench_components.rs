//! Component micro-benchmarks (ablation of the pipeline's building blocks): MAS
//! discovery, partition computation, ECG grouping, AES, and the PRF cell cipher.

use criterion::{criterion_group, criterion_main, Criterion};
use f2_core::ecg::group_equivalence_classes;
use f2_core::fake::FreshValueGenerator;
use f2_crypto::{Aes128, MasterKey, ProbabilisticCipher};
use f2_datagen::Dataset;
use f2_fd::mas::find_mas;
use f2_relation::{AttrSet, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_components(c: &mut Criterion) {
    let orders = Dataset::Orders.generate(4_000, 42);
    let mut group = c.benchmark_group("components");
    group.sample_size(10);

    group.bench_function("mas_discovery_orders_4k", |b| b.iter(|| find_mas(&orders)));

    let mas = find_mas(&orders).sets[0];
    group.bench_function("partition_orders_4k", |b| b.iter(|| Partition::compute(&orders, mas)));

    let partition = Partition::compute(&orders, mas);
    group.bench_function("ecg_grouping_k5", |b| {
        b.iter(|| {
            let mut fresh = FreshValueGenerator::new();
            group_equivalence_classes(partition.classes(), 5, mas.len(), &mut fresh)
        })
    });

    group.bench_function("single_attribute_partition", |b| {
        b.iter(|| Partition::compute(&orders, AttrSet::single(2)))
    });

    group.bench_function("aes128_block", |b| {
        let aes = Aes128::new(&[7u8; 16]);
        let mut block = [42u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            block
        })
    });

    group.bench_function("prf_cell_encrypt", |b| {
        let cipher = ProbabilisticCipher::new(&MasterKey::from_seed(7).attribute_key(0));
        let mut rng = StdRng::seed_from_u64(7);
        let v = f2_relation::Value::text("1-URGENT");
        b.iter(|| cipher.encrypt_value(&v, &mut rng))
    });

    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
