//! Criterion bench for Figure 10 and §5.4: TANE on the plaintext vs on the encrypted
//! table, and TANE vs F² encryption (local computation vs outsourcing preparation).

use criterion::{criterion_group, criterion_main, Criterion};
use f2_bench::time_fd_discovery;
use f2_core::{Scheme, F2};
use f2_datagen::Dataset;
use f2_fd::tane::{Tane, TaneConfig};

fn bench_fd_overhead(c: &mut Criterion) {
    let plain = Dataset::Orders.generate(1_500, 42);
    let scheme = F2::builder().alpha(0.2).split_factor(2).seed(7).build().unwrap();
    let outcome = scheme.encrypt(&plain).unwrap();

    let mut group = c.benchmark_group("fig10_fd_discovery");
    group.sample_size(10);
    let tane = Tane::with_config(TaneConfig { max_lhs_size: Some(3) });
    group.bench_function("tane_on_plaintext", |b| b.iter(|| tane.discover(&plain)));
    group.bench_function("tane_on_encrypted", |b| b.iter(|| tane.discover(&outcome.encrypted)));
    group.bench_function("f2_encrypt_same_table", |b| {
        b.iter(|| scheme.encrypt(&plain).unwrap());
    });
    group.finish();

    // Sanity use of the helper so the two paths stay in sync.
    let _ = time_fd_discovery(&plain, Some(2));
}

criterion_group!(benches, bench_fd_overhead);
criterion_main!(benches);
