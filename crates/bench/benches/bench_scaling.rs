//! Criterion bench for Figure 7: full F² encryption time as a function of data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use f2_core::{Scheme, F2};
use f2_datagen::Dataset;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_encrypt_vs_size");
    group.sample_size(10);
    for dataset in [Dataset::Synthetic, Dataset::Orders] {
        for rows in [500usize, 1_000, 2_000, 4_000] {
            let table = dataset.generate(rows, 42);
            group.throughput(Throughput::Elements(rows as u64));
            group.bench_with_input(BenchmarkId::new(dataset.name(), rows), &table, |b, table| {
                let scheme = F2::builder().alpha(0.2).split_factor(2).seed(7).build().unwrap();
                b.iter(|| scheme.encrypt(table).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
