//! Criterion bench for Figure 7: full F² encryption time as a function of data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use f2_core::{F2Config, F2Encryptor};
use f2_crypto::MasterKey;
use f2_datagen::Dataset;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_encrypt_vs_size");
    group.sample_size(10);
    for dataset in [Dataset::Synthetic, Dataset::Orders] {
        for rows in [500usize, 1_000, 2_000, 4_000] {
            let table = dataset.generate(rows, 42);
            group.throughput(Throughput::Elements(rows as u64));
            group.bench_with_input(
                BenchmarkId::new(dataset.name(), rows),
                &table,
                |b, table| {
                    let enc =
                        F2Encryptor::new(F2Config::new(0.2, 2).unwrap(), MasterKey::from_seed(7));
                    b.iter(|| enc.encrypt(table).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
