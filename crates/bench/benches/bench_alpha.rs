//! Criterion bench for Figure 6: full F² encryption time as a function of α.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f2_core::{Scheme, F2};
use f2_datagen::Dataset;

fn bench_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_encrypt_vs_alpha");
    group.sample_size(10);
    for dataset in [Dataset::Synthetic, Dataset::Orders] {
        let table = dataset.generate(2_000, 42);
        for denom in [5usize, 10, 20] {
            let alpha = 1.0 / denom as f64;
            group.bench_with_input(
                BenchmarkId::new(dataset.name(), format!("alpha_1_{denom}")),
                &alpha,
                |b, &alpha| {
                    let scheme =
                        F2::builder().alpha(alpha).split_factor(2).seed(7).build().unwrap();
                    b.iter(|| scheme.encrypt(&table).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_alpha);
criterion_main!(benches);
