//! Criterion bench for Figure 8: every backend of the registry on the same table.
//!
//! Backends the registry marks as sampled (Paillier) are benchmarked on their sample
//! row count rather than the full table: even on the Montgomery engine, a 512-bit
//! Paillier pass over the whole table would dwarf every other bar — exactly the
//! relative cost the paper reports. Two per-cell micro-benchmarks of the underlying
//! probabilistic primitives complete the picture (`bench_modpow` covers the
//! modular-exponentiation engine itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f2_bench::backend_registry;
use f2_crypto::{MasterKey, PaillierKeyPair};
use f2_datagen::Dataset;
use f2_relation::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_baselines(c: &mut Criterion) {
    let table = Dataset::Orders.generate(1_000, 42);

    let mut group = c.benchmark_group("fig8_baselines");
    group.sample_size(10);

    for backend in backend_registry(0.2, 2, 7) {
        let bench_table = match backend.sample_rows {
            Some(rows) => table.truncated(rows),
            None => table.clone(),
        };
        group.bench_with_input(
            BenchmarkId::new(backend.scheme.name(), format!("{}_rows", bench_table.row_count())),
            &bench_table,
            |b, t| b.iter(|| backend.scheme.encrypt(t).unwrap()),
        );
    }

    group.bench_function("paillier_512_per_cell", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = PaillierKeyPair::generate(512, &mut rng).unwrap();
        let v = Value::text("4-NOT SPECIFIED");
        b.iter(|| kp.public().encrypt_value(&v, &mut rng).unwrap());
    });

    group.bench_function("prf_probabilistic_per_cell", |b| {
        let cipher = f2_crypto::ProbabilisticCipher::new(&MasterKey::from_seed(7).attribute_key(0));
        let mut rng = StdRng::seed_from_u64(7);
        let v = Value::text("4-NOT SPECIFIED");
        b.iter(|| cipher.encrypt_value(&v, &mut rng));
    });

    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
