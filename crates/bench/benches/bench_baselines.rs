//! Criterion bench for Figure 8: F² vs the deterministic AES baseline vs Paillier.
//!
//! Paillier is benchmarked per cell (not per table): encrypting whole tables with a
//! 512-bit modulus would take hours, exactly the point the paper makes.

use criterion::{criterion_group, criterion_main, Criterion};
use f2_bench::time_aes_baseline;
use f2_core::{F2Config, F2Encryptor};
use f2_crypto::{MasterKey, PaillierKeyPair};
use f2_datagen::Dataset;
use f2_relation::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_baselines(c: &mut Criterion) {
    let table = Dataset::Orders.generate(1_000, 42);

    let mut group = c.benchmark_group("fig8_baselines");
    group.sample_size(10);

    group.bench_function("f2_encrypt_1k_rows", |b| {
        let enc = F2Encryptor::new(F2Config::new(0.2, 2).unwrap(), MasterKey::from_seed(7));
        b.iter(|| enc.encrypt(&table).unwrap());
    });

    group.bench_function("aes_deterministic_1k_rows", |b| {
        b.iter(|| time_aes_baseline(&table, 7));
    });

    group.bench_function("paillier_512_per_cell", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = PaillierKeyPair::generate(512, &mut rng).unwrap();
        let v = Value::text("4-NOT SPECIFIED");
        b.iter(|| kp.public().encrypt_value(&v, &mut rng).unwrap());
    });

    group.bench_function("prf_probabilistic_per_cell", |b| {
        let cipher =
            f2_crypto::ProbabilisticCipher::new(&MasterKey::from_seed(7).attribute_key(0));
        let mut rng = StdRng::seed_from_u64(7);
        let v = Value::text("4-NOT SPECIFIED");
        b.iter(|| cipher.encrypt_value(&v, &mut rng));
    });

    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
