//! Per-phase micro-benchmarks of the F² planning stack on the interned columnar
//! core: MAX discovery, MAS partitioning, plan building (ECG grouping + split), the
//! false-positive planner, one full chunk encryption, and the chunked 10k-row engine
//! run tracked by the `f2_phases` section of `BENCH_report.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use f2_bench::measure_engine;
use f2_core::config::F2Config;
use f2_core::fake::FreshValueGenerator;
use f2_core::fpfd::plan_false_positive_elimination;
use f2_core::sse::build_mas_plan;
use f2_core::{Scheme, F2};
use f2_datagen::Dataset;
use f2_fd::mas::find_mas;
use f2_relation::Partition;

/// The engine workload's chunk shape (10k rows / 512-row chunks).
const CHUNK_ROWS: usize = 512;

fn bench_f2_phases(c: &mut Criterion) {
    let table = Dataset::Synthetic.generate(10_000, 42);
    let chunk = table.truncated(CHUNK_ROWS);
    let config = F2Config::new(0.2, 2).expect("valid config");
    let mut group = c.benchmark_group("f2_phases");
    group.sample_size(10);

    group.bench_function("max_discovery_chunk", |b| {
        b.iter(|| {
            // Fresh clone so every iteration pays the lazy columnar build too.
            let t = chunk.clone();
            find_mas(&t)
        })
    });

    let mas_set = find_mas(&chunk);
    group.bench_function("mas_partitions_chunk", |b| {
        b.iter(|| {
            mas_set.sets.iter().map(|&m| Partition::compute(&chunk, m).class_count()).sum::<usize>()
        })
    });

    group.bench_function("mas_plans_chunk", |b| {
        b.iter(|| {
            let mut fresh = FreshValueGenerator::for_table(&chunk);
            mas_set
                .sets
                .iter()
                .map(|&m| build_mas_plan(&chunk, m, &config, &mut fresh).instances.len())
                .sum::<usize>()
        })
    });

    group.bench_function("fp_plan_chunk", |b| {
        b.iter(|| {
            let mut fresh = FreshValueGenerator::for_table(&chunk);
            plan_false_positive_elimination(&chunk, &mas_set.sets, config.ecg_size(), &mut fresh)
                .pairs
                .len()
        })
    });

    let scheme = F2::builder().alpha(0.2).split_factor(2).seed(7).build().expect("valid scheme");
    group.bench_function("encrypt_chunk_512", |b| b.iter(|| scheme.encrypt(&chunk).unwrap()));

    group.bench_function("engine_10k_1worker", |b| {
        b.iter(|| measure_engine(&scheme, &table, 1, CHUNK_ROWS, 7))
    });

    group.finish();
}

criterion_group!(benches, bench_f2_phases);
criterion_main!(benches);
