//! Criterion bench for the modular-exponentiation engine under the Paillier hot
//! path: Montgomery/REDC windowed exponentiation ([`BigUint::mod_pow`] on odd
//! moduli) versus the division-per-step generic path
//! ([`BigUint::mod_pow_generic`]) at the two operand sizes that matter — 512 bits
//! (the registry's Paillier modulus) and 1024 bits (the `n²` ciphertext-space width
//! every encryption and decryption exponentiates in).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f2_crypto::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_modpow(c: &mut Criterion) {
    let mut group = c.benchmark_group("modpow");
    group.sample_size(10);

    for bits in [512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(42);
        let mut modulus = BigUint::random_bits(bits, &mut rng);
        if modulus.is_even() {
            modulus = modulus.add(&BigUint::one());
        }
        let base = BigUint::random_bits(bits - 1, &mut rng);
        let exp = BigUint::random_bits(bits, &mut rng);

        group.bench_with_input(BenchmarkId::new("montgomery", bits), &bits, |b, _| {
            b.iter(|| base.mod_pow(&exp, &modulus))
        });
        group.bench_with_input(BenchmarkId::new("generic", bits), &bits, |b, _| {
            b.iter(|| base.mod_pow_generic(&exp, &modulus))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_modpow);
criterion_main!(benches);
