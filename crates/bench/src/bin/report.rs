//! `report` — regenerate every table and figure of the F² evaluation (paper §5).
//!
//! Usage:
//! ```text
//! cargo run --release -p f2-bench --bin report -- [experiment …]
//! ```
//! where `experiment` is one or more of `table1`, `fig6`, `fig7`, `fig8`, `fig9a`,
//! `fig9b`, `fig9c`, `fig9d`, `fig10`, `local_vs_outsource`, `security`, `engine`, or
//! `all` (default). Row counts are scaled down from the paper (see EXPERIMENTS.md);
//! set the environment variable `F2_REPORT_SCALE` to an integer ≥ 1 to multiply them.
//! Setting `F2_REPORT_SMOKE=1` shrinks the `engine` experiment to a seconds-long
//! serializer check (CI runs it on every push).
//!
//! Every encryption measurement goes through the backend-agnostic
//! [`f2_bench::measure_scheme_on`]; the baseline comparison (`fig8`) iterates
//! [`f2_bench::backend_registry`], so adding a backend to the registry adds it to the
//! report. The `engine` experiment sweeps [`f2_bench::ENGINE_WORKER_GRID`] over the
//! streaming pipeline and additionally writes the machine-readable
//! `BENCH_report.json`, the repo's tracked perf-trajectory artifact.

use f2_bench::{
    backend_registry, backend_registry_with, engine_backends, measure_engine, measure_scheme_on,
    secs, time_fd_discovery, EngineMeasurement, ENGINE_WORKER_GRID, REGISTRY_PAILLIER_BITS,
};
use f2_core::{F2Scheme, PaillierScheme, Scheme, F2};
use f2_datagen::Dataset;
use f2_fd::mas::find_mas;
use f2_relation::stats::{human_bytes, TableStats};
use f2_relation::Table;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn scale() -> usize {
    std::env::var("F2_REPORT_SCALE").ok().and_then(|s| s.parse::<usize>().ok()).unwrap_or(1).max(1)
}

fn smoke() -> bool {
    std::env::var("F2_REPORT_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// The F² backend used throughout the report.
fn f2_scheme(alpha: f64, split: usize, seed: u64) -> F2Scheme {
    F2::builder().alpha(alpha).split_factor(split).seed(seed).build().expect("valid F2 parameters")
}

/// Table 1: dataset description.
fn table1() {
    header("Table 1 — Dataset description (generated workloads)");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>8}",
        "dataset", "attributes", "tuples", "size", "MASs"
    );
    for dataset in [Dataset::Orders, Dataset::Customer, Dataset::Synthetic] {
        let rows = match dataset {
            Dataset::Orders => 15_000,
            Dataset::Customer => 6_000,
            Dataset::Synthetic => 8_000,
        } * scale();
        let t = dataset.generate(rows, 42);
        let stats = TableStats::compute(&t);
        let mas = find_mas(&t);
        println!(
            "{:<12} {:>12} {:>12} {:>10} {:>8}",
            dataset.name(),
            stats.attributes,
            stats.tuples,
            stats.human_size(),
            mas.len()
        );
    }
    println!("\n(The paper uses Orders 15M/1.64GB, Customer 0.96M/282MB, Synthetic 4M/224MB;");
    println!(" the generators reproduce schema shape and domain structure at reduced scale.)");
}

fn print_step_time_row(label: String, m: &f2_bench::RunMeasurement) {
    let t = &m.report.timings;
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        label,
        secs(t.max),
        secs(t.sse),
        secs(t.syn),
        secs(t.fp),
        secs(t.total()),
    );
}

/// Figure 6: per-step encryption time for various α.
fn fig6() {
    header("Figure 6 — Per-step encryption time vs α (MAX / SSE / SYN / FP)");
    for (dataset, rows, alphas) in [
        (Dataset::Synthetic, 6_000 * scale(), vec![0.2, 0.1, 1.0 / 15.0, 0.05, 0.04, 1.0 / 30.0]),
        (Dataset::Orders, 10_000 * scale(), vec![0.2, 0.1, 1.0 / 15.0, 0.05, 0.04]),
    ] {
        println!("\n[{} — {} rows]", dataset.name(), rows);
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "alpha", "MAX", "SSE", "SYN", "FP", "total"
        );
        let table = dataset.generate(rows, 42);
        for &alpha in &alphas {
            let m = measure_scheme_on(&f2_scheme(alpha, 2, 7), &table, dataset.name());
            print_step_time_row(format!("1/{:.0}", 1.0 / alpha), &m);
        }
    }
}

/// Figure 7: per-step encryption time for various data sizes.
fn fig7() {
    header("Figure 7 — Per-step encryption time vs data size");
    for (dataset, alpha, sizes) in [
        (Dataset::Synthetic, 0.25, vec![2_000, 4_000, 8_000, 16_000]),
        (Dataset::Orders, 0.2, vec![4_000, 8_000, 12_000, 16_000, 20_000]),
    ] {
        println!("\n[{} — α = {alpha}]", dataset.name());
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "rows", "MAX", "SSE", "SYN", "FP", "total"
        );
        let scheme = f2_scheme(alpha, 2, 7);
        for &rows in &sizes {
            let table = dataset.generate(rows * scale(), 7);
            let m = measure_scheme_on(&scheme, &table, dataset.name());
            print_step_time_row(format!("{}", m.rows), &m);
        }
    }
}

/// Figure 8: every registered backend on the same tables.
fn fig8() {
    header("Figure 8 — Encryption time across the backend registry");
    for (dataset, alpha, sizes) in [
        (Dataset::Synthetic, 0.25, vec![2_000, 4_000, 8_000]),
        (Dataset::Orders, 0.2, vec![4_000, 8_000, 16_000]),
    ] {
        println!("\n[{} — α = {alpha}]", dataset.name());
        let registry = backend_registry(alpha, 2, 7);
        print!("{:<10}", "rows");
        for backend in &registry {
            let sampled = if backend.sample_rows.is_some() { "*" } else { "" };
            print!(" {:>20}", format!("{}{}", backend.scheme.name(), sampled));
        }
        println!();
        for &rows in &sizes {
            let rows = rows * scale();
            let table = dataset.generate(rows, 42);
            print!("{rows:<10}");
            for backend in &registry {
                let m = backend.measure(&table, dataset.name());
                print!(" {:>20}", secs(m.wall));
            }
            println!();
        }
    }
    println!("\n(*) timed on a small row sample and extrapolated linearly — even on the");
    println!("    Montgomery engine, 512-bit Paillier stays ~20-50x slower than the");
    println!("    symmetric backends, the paper's qualitative point.");
}

/// Figure 9 (a)/(b): artificial-record overhead vs α.
fn fig9_alpha(dataset: Dataset, rows: usize, tag: &str) {
    header(&format!(
        "Figure 9({tag}) — Artificial-record overhead vs α ({} — {} rows)",
        dataset.name(),
        rows
    ));
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "alpha", "GROUP", "SCALE", "SYN", "FP", "total"
    );
    let table = dataset.generate(rows, 42);
    for denom in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
        let alpha = 1.0 / denom as f64;
        let m = measure_scheme_on(&f2_scheme(alpha, 2, 7), &table, dataset.name());
        let (g, s, c, f) = m.report.overhead.per_step_ratios();
        println!(
            "{:<10} {:>8.3}% {:>8.3}% {:>8.3}% {:>8.3}% {:>8.3}%",
            format!("1/{denom}"),
            g * 100.0,
            s * 100.0,
            c * 100.0,
            f * 100.0,
            m.report.overhead.overhead_ratio() * 100.0
        );
    }
}

/// Figure 9 (c)/(d): artificial-record overhead vs data size.
fn fig9_size(dataset: Dataset, sizes: &[usize], tag: &str) {
    header(&format!(
        "Figure 9({tag}) — Artificial-record overhead vs data size ({} — α = 0.2)",
        dataset.name()
    ));
    println!(
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "rows", "size", "GROUP", "SCALE", "SYN", "FP", "total"
    );
    let scheme = f2_scheme(0.2, 2, 7);
    for &rows in sizes {
        let table = dataset.generate(rows * scale(), 7);
        let m = measure_scheme_on(&scheme, &table, dataset.name());
        let (g, s, c, f) = m.report.overhead.per_step_ratios();
        println!(
            "{:<10} {:>10} {:>8.3}% {:>8.3}% {:>8.3}% {:>8.3}% {:>8.3}%",
            m.rows,
            human_bytes(m.plain_bytes),
            g * 100.0,
            s * 100.0,
            c * 100.0,
            f * 100.0,
            m.report.overhead.overhead_ratio() * 100.0
        );
    }
}

/// Figure 10: FD-discovery time overhead on the encrypted vs the original table.
fn fig10() {
    header("Figure 10 — FD discovery time overhead on D̂ vs D (TANE, LHS ≤ 3)");
    for (dataset, rows) in
        [(Dataset::Customer, 2_000 * scale()), (Dataset::Orders, 4_000 * scale())]
    {
        println!("\n[{} — {} rows]", dataset.name(), rows);
        println!("{:<10} {:>12} {:>12} {:>10}", "alpha", "T(D)", "T(D̂)", "overhead");
        let table = dataset.generate(rows, 42);
        let (plain_time, _) = time_fd_discovery(&table, Some(3));
        for denom in [2usize, 4, 6, 8, 10] {
            let alpha = 1.0 / denom as f64;
            let outcome = f2_scheme(alpha, 2, 7).encrypt(&table).expect("encrypt");
            let (cipher_time, _) = time_fd_discovery(&outcome.encrypted, Some(3));
            let overhead = cipher_time.as_secs_f64() / plain_time.as_secs_f64() - 1.0;
            println!(
                "{:<10} {:>12} {:>12} {:>9.2}",
                format!("1/{denom}"),
                secs(plain_time),
                secs(cipher_time),
                overhead
            );
        }
    }
}

/// §5.4: local FD discovery vs outsourcing preparation (encryption).
fn local_vs_outsource() {
    header("§5.4 — Local FD discovery (TANE) vs outsourcing preparation (F² encryption)");
    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>10}",
        "dataset", "rows", "TANE on D", "F2 encrypt", "ratio"
    );
    for (dataset, rows, cap) in
        [(Dataset::Synthetic, 6_000 * scale(), None), (Dataset::Orders, 6_000 * scale(), Some(4))]
    {
        let table = dataset.generate(rows, 42);
        let (tane_time, _) = time_fd_discovery(&table, cap);
        let m = measure_scheme_on(&f2_scheme(0.2, 2, 7), &table, dataset.name());
        let enc = m.report.timings.total();
        println!(
            "{:<12} {:>8} {:>14} {:>14} {:>9.1}x",
            dataset.name(),
            rows,
            secs(tane_time),
            secs(enc),
            tane_time.as_secs_f64() / enc.as_secs_f64().max(1e-9)
        );
    }
    println!("\n(The paper reports 1,736s for TANE vs 2s for F² on the 25MB synthetic dataset.)");
}

/// §4 empirical check: attack success probability vs α, over the trait-level
/// experiment harness.
fn security() {
    use f2_attack::{AttackExperiment, FrequencyAttacker, KerckhoffsAttacker};
    header("§4 — Empirical frequency-analysis attack success vs α (Orders)");
    let rows = 2_000 * scale();
    let plain = Dataset::Orders.generate(rows, 42);
    println!("{:<10} {:>26} {:>26}", "alpha", "frequency-matching", "kerckhoffs-4-step");
    for denom in [2usize, 4, 5, 8, 10] {
        let alpha = 1.0 / denom as f64;
        let scheme = f2_scheme(alpha, 2, 7);
        let outcome = scheme.encrypt(&plain).expect("encrypt");
        let mas = outcome.f2_state().expect("F2 owner state").mas_sets[0];
        let exp =
            AttackExperiment::for_scheme(&plain, &scheme, &outcome, mas).expect("ground truth");
        let freq = exp.run(&FrequencyAttacker, 2_000, 9).success_rate();
        let ker = exp.run(&KerckhoffsAttacker, 2_000, 9).success_rate();
        println!(
            "{:<10} {:>20.1}% (≤{:>4.1}%) {:>18.1}% (≤{:>4.1}%)",
            format!("1/{denom}"),
            freq * 100.0,
            alpha * 100.0,
            ker * 100.0,
            alpha * 100.0
        );
    }
    println!("\n(Both adversaries stay at or below the configured α, as Definition 2.1 requires.)");
}

/// The `engine` experiment: streaming-pipeline throughput across the worker grid on
/// the synthetic 10k-row workload, plus the Paillier cell-framing comparison, printed
/// as a table and written to `BENCH_report.json`.
fn engine() {
    header("Engine — streaming pipeline throughput vs worker count (Synthetic)");
    let smoke = smoke();
    let rows = if smoke { 400 } else { 10_000 * scale() };
    let chunk_rows = if smoke { 32 } else { 512 };
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let table = Dataset::Synthetic.generate(rows, 42);
    println!(
        "[{} rows, {} per chunk, {} host CPU(s){}]\n",
        rows,
        chunk_rows,
        host_cpus,
        if smoke { ", SMOKE MODE" } else { "" }
    );
    if host_cpus < 2 {
        println!("NOTE: this host exposes a single CPU; multi-worker speedups are bounded");
        println!("      at ~1.0x by the hardware, not by the pipeline.\n");
    }
    println!(
        "{:<20} {:>8} {:>8} {:>12} {:>14} {:>10} {:>14}",
        "backend", "workers", "chunks", "wall", "MB/s", "speedup", "vs single-shot"
    );
    let mut measurements: Vec<(EngineMeasurement, f64, f64)> = Vec::new();
    for scheme in engine_backends(0.2, 2, 7) {
        // Baseline: the pre-engine path — one unchunked, single-threaded encrypt().
        // For F² this also isolates the algorithmic win of chunking (the SSE step is
        // quadratic in the per-chunk equivalence-class count).
        let single_shot =
            measure_scheme_on(scheme.as_ref(), &table, "Synthetic").wall.as_secs_f64();
        let mut one_worker = None;
        for workers in ENGINE_WORKER_GRID {
            let m = measure_engine(scheme.as_ref(), &table, workers, chunk_rows, 7);
            let base = *one_worker.get_or_insert(m.wall.as_secs_f64());
            let speedup = base / m.wall.as_secs_f64().max(1e-9);
            let vs_single = single_shot / m.wall.as_secs_f64().max(1e-9);
            println!(
                "{:<20} {:>8} {:>8} {:>12} {:>14.2} {:>9.2}x {:>13.2}x",
                m.scheme,
                m.workers,
                m.chunks,
                secs(m.wall),
                m.throughput_mb_s(),
                speedup,
                vs_single
            );
            measurements.push((m, speedup, vs_single));
        }
    }

    // Paillier cell-framing comparison: chunk-per-ciphertext vs packed rows on the
    // same sampled measurement policy the registry uses.
    println!("\n{:<20} {:>8} {:>12} {:>14}", "paillier framing", "rows", "wall", "MB/s");
    let (bits, sample) = if smoke { (64, 4) } else { (512, 8) };
    let mut framing = Vec::new();
    for backend in backend_registry_with(0.2, 2, 7, bits, sample) {
        if !backend.scheme.name().starts_with("paillier") {
            continue;
        }
        let bench_table = table.truncated(sample);
        let m = measure_scheme_on(backend.scheme.as_ref(), &bench_table, "Synthetic");
        let mb_s = m.plain_bytes as f64 / 1e6 / m.wall.as_secs_f64().max(1e-9);
        println!("{:<20} {:>8} {:>12} {:>14.4}", m.scheme, m.rows, secs(m.wall), mb_s);
        framing.push((m, mb_s));
    }

    // Per-phase F² breakdown (MAX / SSE / SYN / FP) on the pipeline's tracked
    // workload: 10k synthetic rows through the engine at 512-row chunks, one worker.
    // Like the Paillier section it is deliberately NOT shrunk in smoke mode — the
    // run takes well under a second on the interned planning core, and an identical
    // workload is what lets `bench_guard` hold the f2 throughput floor across
    // smoke-mode CI runs and committed full-mode reports.
    let f2_phases = f2_phase_breakdown();
    println!(
        "\nF2 phases [{} rows, {} per chunk, 1 worker, best of {}]:",
        f2_phases.rows, f2_phases.chunk_rows, F2_PHASE_ITERS
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "MAX", "SSE", "SYN", "FP", "wall", "MB/s"
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>10.2}",
        secs(f2_phases.max),
        secs(f2_phases.sse),
        secs(f2_phases.syn),
        secs(f2_phases.fp),
        secs(f2_phases.wall),
        f2_phases.throughput_mb_s
    );

    // Streaming vs in-memory on the same tracked workload: the constant-memory
    // source→frame-stream path (`run_streaming`, with CRC32 checksums and RLE
    // compression on every frame) against the all-in-RAM engine wall time measured
    // above. Also fixed in smoke mode, and guarded by `bench_guard`.
    let streaming = streaming_breakdown(&f2_phases);
    println!(
        "\nStreaming [{} rows, {} per chunk, best of {}]:",
        streaming.rows, streaming.chunk_rows, F2_PHASE_ITERS
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>16} {:>14}",
        "path", "wall", "MB/s", "stream bytes", "peak chunk rows", "peak chunk B"
    );
    println!(
        "{:<14} {:>12} {:>12.2} {:>14} {:>16} {:>14}",
        "in-memory",
        secs(f2_phases.wall),
        f2_phases.throughput_mb_s,
        "-",
        streaming.rows,
        streaming.plain_bytes
    );
    println!(
        "{:<14} {:>12} {:>12.2} {:>14} {:>16} {:>14}",
        "streaming",
        secs(streaming.wall),
        streaming.throughput_mb_s,
        streaming.stream_bytes,
        streaming.peak_chunk_rows,
        streaming.peak_chunk_plain_bytes
    );

    // Telemetry overhead on the same tracked workload: the streaming pipeline (the
    // most densely instrumented path — spans, chunk histograms, frame and crypto
    // counters all fire) with the global registry disabled vs enabled. Fixed in
    // smoke mode like the sections above; `bench_guard` holds the ≤3% ceiling.
    let obs = observability_overhead();
    println!(
        "\nTelemetry [{} rows, {} per chunk, best of {}]:",
        obs.rows, obs.chunk_rows, obs.iters
    );
    println!("{:<14} {:>12} {:>12} {:>10}", "telemetry", "wall", "MB/s", "overhead");
    println!("{:<14} {:>12} {:>12.2} {:>10}", "disabled", secs(obs.noop_wall), obs.noop_mb_s, "-");
    println!(
        "{:<14} {:>12} {:>12.2} {:>9.2}%",
        "enabled",
        secs(obs.instrumented_wall),
        obs.instrumented_mb_s,
        obs.overhead_frac * 100.0
    );

    // Per-phase Paillier breakdown (keygen / encrypt / decrypt) at the registry's
    // realistic 512-bit modulus. Deliberately NOT shrunk in smoke mode: the sampled
    // workload is tiny anyway, and keeping it identical to the committed full-mode
    // report is what lets the CI bench-guard diff throughput meaningfully.
    let phases = paillier_phases(&table);
    println!(
        "\nPaillier phases [{}-bit modulus, {} rows]: keygen {}, calibration mod_pow {}",
        phases.modulus_bits,
        phases.rows,
        secs(phases.keygen),
        secs(phases.calibration)
    );
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "backend", "encrypt", "decrypt", "enc MB/s", "dec MB/s", "vs PR-2"
    );
    for f in &phases.framings {
        println!(
            "{:<20} {:>12} {:>12} {:>12.4} {:>12.4} {:>9.1}x",
            f.backend,
            secs(f.encrypt),
            secs(f.decrypt),
            f.encrypt_mb_s,
            f.decrypt_mb_s,
            f.speedup_vs_pr2
        );
    }

    let path = "BENCH_report.json";
    let json = engine_json(
        smoke,
        rows,
        chunk_rows,
        host_cpus,
        &measurements,
        &framing,
        &f2_phases,
        &streaming,
        &obs,
        &phases,
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nWrote {path} ({} engine entries).", measurements.len());
}

/// Encrypt throughputs (MB/s) of the committed PR-2 `BENCH_report.json` — the frozen
/// pre-Montgomery baseline the ≥10× acceptance target and the CI bench-guard measure
/// against. Do not update these when the engine gets faster; they are historical.
const PR2_ENCRYPT_MB_S: [(&str, f64); 2] = [("paillier", 0.002561), ("paillier-packed", 0.009064)];

/// Rows the Paillier phase breakdown runs on (the PR-2 sampled workload, so the
/// speedup column is apples-to-apples).
const PAILLIER_PHASE_ROWS: usize = 8;

/// Rows and chunking of the tracked F² engine workload (identical in smoke and full
/// mode, so the bench guard can compare across modes).
const F2_PHASE_ROWS: usize = 10_000;
const F2_PHASE_CHUNK_ROWS: usize = 512;

/// Runs the F² phase workload is repeated; the fastest run is recorded (same
/// rationale as [`PAILLIER_PHASE_ITERS`]: a 1-CPU CI host jitters).
const F2_PHASE_ITERS: usize = 3;

/// The `f2_phases` section of `BENCH_report.json`: the MAX / SSE / SYN / FP wall-time
/// breakdown of one chunked 10k-row engine run, plus its end-to-end throughput. This
/// is the number the `bench_guard` f2 floor tracks (hardware-normalized by the same
/// `calibration_modpow_s` as the Paillier section).
struct F2Phases {
    rows: usize,
    chunk_rows: usize,
    plain_bytes: usize,
    encrypted_rows: usize,
    max: Duration,
    sse: Duration,
    syn: Duration,
    fp: Duration,
    wall: Duration,
    throughput_mb_s: f64,
}

/// Measure the F² phase breakdown: best-of-[`F2_PHASE_ITERS`] single-worker engine
/// runs over the fixed workload; the per-step durations come from the winning run's
/// merged chunk reports (summed CPU time across chunks). Decryption round-trips on
/// every run, so a fast-but-wrong pipeline cannot pass.
fn f2_phase_breakdown() -> F2Phases {
    use f2_engine::{Engine, EngineConfig};
    let table = Dataset::Synthetic.generate(F2_PHASE_ROWS, 42);
    let scheme = f2_scheme(0.2, 2, 7);
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: F2_PHASE_CHUNK_ROWS, seed: 7 })
        .expect("valid engine config");
    let mut best: Option<(Duration, f2_core::EncryptionReport, usize)> = None;
    for _ in 0..F2_PHASE_ITERS {
        let start = Instant::now();
        let run = engine.encrypt(&scheme, &table).expect("f2 engine encryption");
        let wall = start.elapsed();
        let recovered = scheme.decrypt(&run.outcome).expect("f2 decrypt");
        assert!(recovered.multiset_eq(&table), "f2 pipeline round-trip failed");
        let encrypted_rows = run.outcome.encrypted.row_count();
        if best.as_ref().is_none_or(|(w, _, _)| wall < *w) {
            best = Some((wall, run.outcome.report, encrypted_rows));
        }
    }
    let (wall, report, encrypted_rows) = best.expect("at least one run");
    let plain_bytes = table.size_bytes();
    F2Phases {
        rows: F2_PHASE_ROWS,
        chunk_rows: F2_PHASE_CHUNK_ROWS,
        plain_bytes,
        encrypted_rows,
        max: report.timings.max,
        sse: report.timings.sse,
        syn: report.timings.syn,
        fp: report.timings.fp,
        wall,
        throughput_mb_s: plain_bytes as f64 / 1e6 / wall.as_secs_f64().max(1e-9),
    }
}

/// The `streaming` section of `BENCH_report.json`: the tracked F² workload pushed
/// through `Engine::run_streaming` (source → checksummed v2 frame stream, one chunk
/// in memory at a time) next to the in-memory engine numbers of `f2_phases`, plus
/// the peak-chunk statistics that certify the bounded-memory property.
struct StreamingPhases {
    rows: usize,
    chunk_rows: usize,
    chunks: usize,
    plain_bytes: usize,
    /// Bytes of the produced v2 stream (checksummed, RLE-compressed frames).
    stream_bytes: u64,
    wall: Duration,
    throughput_mb_s: f64,
    /// The in-memory path's throughput on the identical workload (`f2_phases`).
    in_memory_mb_s: f64,
    /// Largest plaintext chunk held at any point (rows / serialized bytes).
    peak_chunk_rows: usize,
    peak_chunk_plain_bytes: usize,
    /// Largest encrypted chunk emitted (rows).
    peak_chunk_output_rows: usize,
}

/// Measure the streaming path on the fixed workload: best-of-[`F2_PHASE_ITERS`]
/// `run_streaming` runs into an in-memory sink. Every run's stream is reloaded and
/// decrypted against the plaintext, so a fast-but-corrupt stream cannot pass.
fn streaming_breakdown(f2_phases: &F2Phases) -> StreamingPhases {
    use f2_engine::stream::read_outcome;
    use f2_engine::{Engine, EngineConfig};
    use f2_io::TableSource;
    let table = Dataset::Synthetic.generate(F2_PHASE_ROWS, 42);
    let scheme = f2_scheme(0.2, 2, 7);
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: F2_PHASE_CHUNK_ROWS, seed: 7 })
        .expect("valid engine config");
    let mut best: Option<(Duration, f2_engine::StreamOutcome)> = None;
    for _ in 0..F2_PHASE_ITERS {
        let mut stream = Vec::new();
        let start = Instant::now();
        let summary = engine
            .run_streaming(&scheme, &mut TableSource::new(&table), &mut stream)
            .expect("streaming encryption");
        let wall = start.elapsed();
        let loaded = read_outcome(&scheme, &stream).expect("stream loads");
        let recovered = scheme.decrypt(&loaded).expect("stream decrypts");
        assert!(recovered.multiset_eq(&table), "streaming round-trip failed");
        if best.as_ref().is_none_or(|(w, _)| wall < *w) {
            best = Some((wall, summary));
        }
    }
    let (wall, summary) = best.expect("at least one run");
    let plain_bytes = table.size_bytes();
    let peak_chunk_rows = summary.chunks.iter().map(|c| c.rows.len()).max().unwrap_or(0);
    let peak_chunk_plain_bytes = summary
        .chunks
        .iter()
        .map(|c| table.view(c.rows.clone()).expect("chunk range").size_bytes())
        .max()
        .unwrap_or(0);
    let peak_chunk_output_rows =
        summary.chunks.iter().map(|c| c.output_rows.len()).max().unwrap_or(0);
    StreamingPhases {
        rows: F2_PHASE_ROWS,
        chunk_rows: F2_PHASE_CHUNK_ROWS,
        chunks: summary.chunks.len(),
        plain_bytes,
        stream_bytes: summary.bytes_written,
        wall,
        throughput_mb_s: plain_bytes as f64 / 1e6 / wall.as_secs_f64().max(1e-9),
        in_memory_mb_s: f2_phases.throughput_mb_s,
        peak_chunk_rows,
        peak_chunk_plain_bytes,
        peak_chunk_output_rows,
    }
}

/// Runs per telemetry mode in [`observability_overhead`]; the fastest run on each
/// side is compared, and the modes are interleaved so load drift on a shared CI
/// host hits both alike. Nine pairs (not the 3-5 the other sections use) because
/// this section estimates a ~1% *difference* between two ~100ms walls — per-side
/// minima need to converge well below the ±3% single-run jitter of a busy 1-CPU
/// runner for the `bench_guard` ceiling to hold without flaking.
const OBS_OVERHEAD_ITERS: usize = 9;

/// The `observability` section of `BENCH_report.json`: the tracked F² workload
/// pushed through the streaming pipeline — the most densely instrumented path, where
/// spans, chunk histograms, and the frame/crypto counters all fire — once with the
/// global telemetry registry disabled and once enabled. `bench_guard` holds
/// `overhead_frac` under its absolute ≤3% ceiling; because both sides are measured
/// in the same run on the same host, the check needs no hardware normalization.
struct ObservabilityOverhead {
    rows: usize,
    chunk_rows: usize,
    iters: usize,
    plain_bytes: usize,
    noop_wall: Duration,
    instrumented_wall: Duration,
    noop_mb_s: f64,
    instrumented_mb_s: f64,
    /// `max(0, instrumented_wall / noop_wall − 1)` — clamped so a faster
    /// instrumented run (pure jitter) reads as zero overhead, not negative.
    overhead_frac: f64,
}

/// Measure telemetry overhead: best-of-[`OBS_OVERHEAD_ITERS`] interleaved
/// `run_streaming` runs per mode. The instrumented arm runs with the registry
/// *and* the trace journal enabled, under an active request trace guard — the
/// exact per-request shape the server puts every connection through (span
/// stage attribution, counts, journal record) — so the ≤3% ceiling covers
/// request tracing, not just bare metrics. The two modes' streams are checked
/// byte-identical (artifact neutrality) and the instrumented stream is
/// reloaded and decrypted, so a cheap-but-wrong telemetry path cannot pass.
fn observability_overhead() -> ObservabilityOverhead {
    use f2_engine::stream::read_outcome;
    use f2_engine::{Engine, EngineConfig};
    use f2_io::TableSource;
    let table = Dataset::Synthetic.generate(F2_PHASE_ROWS, 42);
    let scheme = f2_scheme(0.2, 2, 7);
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: F2_PHASE_CHUNK_ROWS, seed: 7 })
        .expect("valid engine config");
    let registry = f2_obs::global();
    let journal = f2_obs::journal();
    let run = |enabled: bool| {
        registry.set_enabled(enabled);
        journal.set_enabled(enabled);
        let mut stream = Vec::new();
        let start = Instant::now();
        let trace =
            enabled.then(|| journal.begin(f2_obs::TraceCtx::new(0xBE9C, 1), "bench.streaming"));
        engine
            .run_streaming(&scheme, &mut TableSource::new(&table), &mut stream)
            .expect("streaming encryption");
        if let Some(trace) = trace {
            let _ = trace.complete("ok");
        }
        (start.elapsed(), stream)
    };
    let mut noop_wall = Duration::MAX;
    let mut instrumented_wall = Duration::MAX;
    let mut streams: Option<(Vec<u8>, Vec<u8>)> = None;
    for _ in 0..OBS_OVERHEAD_ITERS {
        let (off_wall, off_stream) = run(false);
        let (on_wall, on_stream) = run(true);
        noop_wall = noop_wall.min(off_wall);
        instrumented_wall = instrumented_wall.min(on_wall);
        streams.get_or_insert((off_stream, on_stream));
    }
    registry.set_enabled(true);
    journal.set_enabled(true);
    let (off_stream, on_stream) = streams.expect("at least one run");
    assert_eq!(off_stream, on_stream, "telemetry changed the stream bytes");
    let loaded = read_outcome(&scheme, &on_stream).expect("stream loads");
    let recovered = scheme.decrypt(&loaded).expect("stream decrypts");
    assert!(recovered.multiset_eq(&table), "observability round-trip failed");
    let plain_bytes = table.size_bytes();
    let mb = plain_bytes as f64 / 1e6;
    ObservabilityOverhead {
        rows: F2_PHASE_ROWS,
        chunk_rows: F2_PHASE_CHUNK_ROWS,
        iters: OBS_OVERHEAD_ITERS,
        plain_bytes,
        noop_wall,
        instrumented_wall,
        noop_mb_s: mb / noop_wall.as_secs_f64().max(1e-9),
        instrumented_mb_s: mb / instrumented_wall.as_secs_f64().max(1e-9),
        overhead_frac: (instrumented_wall.as_secs_f64() / noop_wall.as_secs_f64().max(1e-9) - 1.0)
            .max(0.0),
    }
}

/// One framing's measured phases.
struct PaillierFramingPhases {
    backend: String,
    encrypt: Duration,
    decrypt: Duration,
    encrypt_mb_s: f64,
    decrypt_mb_s: f64,
    pr2_encrypt_mb_s: f64,
    speedup_vs_pr2: f64,
}

/// The `paillier` section of `BENCH_report.json`: keygen plus per-framing
/// encrypt/decrypt wall clocks on the fixed sampled workload, and a same-run
/// hardware calibration.
struct PaillierPhases {
    modulus_bits: usize,
    rows: usize,
    plain_bytes: usize,
    keygen: Duration,
    /// Wall clock of a fixed-operand modular exponentiation measured in this run.
    /// `bench_guard` compares *normalized* throughput (`encrypt_mb_s ×
    /// calibration_s`) between reports, cancelling the host's absolute speed so a
    /// slower CI runner does not fail the gate (nor a faster one mask a
    /// regression).
    calibration: Duration,
    framings: Vec<PaillierFramingPhases>,
}

/// Time the fixed calibration workload: one 512-bit-exponent modular
/// exponentiation over a 1024-bit odd modulus (the shape of the Paillier `n²`
/// hot-path operation), deterministic operands, best of [`PAILLIER_PHASE_ITERS`].
fn calibration_modpow() -> Duration {
    use f2_crypto::BigUint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0xCA11_B8A7);
    let mut modulus = BigUint::random_bits(1024, &mut rng);
    if modulus.is_even() {
        modulus = modulus.add(&BigUint::one());
    }
    let base = BigUint::random_bits(1023, &mut rng);
    let exp = BigUint::random_bits(512, &mut rng);
    let mut best = Duration::MAX;
    for _ in 0..PAILLIER_PHASE_ITERS {
        let start = Instant::now();
        let out = base.mod_pow(&exp, &modulus);
        best = best.min(start.elapsed());
        assert!(!out.is_zero(), "calibration workload degenerated");
    }
    best
}

/// Times one phase is re-measured; the minimum wall clock is recorded. The guard
/// diffs these numbers across machines and runs with a 20% tolerance, and a single
/// millisecond-scale measurement on a busy 1-CPU host can easily jitter past that.
const PAILLIER_PHASE_ITERS: usize = 5;

/// Measure the Paillier per-phase breakdown on the first [`PAILLIER_PHASE_ROWS`]
/// rows of `table` (best of [`PAILLIER_PHASE_ITERS`] runs per phase). Decryption
/// output is verified against the plaintext, so a silently-wrong fast path cannot
/// masquerade as a fast one.
fn paillier_phases(table: &Table) -> PaillierPhases {
    let sample = table.truncated(PAILLIER_PHASE_ROWS);
    let keygen_start = Instant::now();
    let per_cell = PaillierScheme::new(REGISTRY_PAILLIER_BITS, 7).expect("valid modulus");
    let keygen = keygen_start.elapsed();
    // `packed()` reuses the key pair, so keygen is paid (and timed) once.
    let schemes = [per_cell.clone(), per_cell.packed()];
    let mut framings = Vec::with_capacity(schemes.len());
    for scheme in schemes {
        let mut encrypt = Duration::MAX;
        let mut decrypt = Duration::MAX;
        for _ in 0..PAILLIER_PHASE_ITERS {
            let enc_start = Instant::now();
            let outcome = scheme.encrypt(&sample).expect("paillier encrypt");
            encrypt = encrypt.min(enc_start.elapsed());
            let dec_start = Instant::now();
            let recovered = scheme.decrypt(&outcome).expect("paillier decrypt");
            decrypt = decrypt.min(dec_start.elapsed());
            assert!(recovered.multiset_eq(&sample), "{}: bad roundtrip", scheme.name());
        }
        let mb = sample.size_bytes() as f64 / 1e6;
        let encrypt_mb_s = mb / encrypt.as_secs_f64().max(1e-9);
        let pr2 = PR2_ENCRYPT_MB_S
            .iter()
            .find(|(name, _)| *name == scheme.name())
            .map(|&(_, v)| v)
            .expect("PR-2 baseline recorded for every framing");
        framings.push(PaillierFramingPhases {
            backend: scheme.name().to_owned(),
            encrypt,
            decrypt,
            encrypt_mb_s,
            decrypt_mb_s: mb / decrypt.as_secs_f64().max(1e-9),
            pr2_encrypt_mb_s: pr2,
            speedup_vs_pr2: encrypt_mb_s / pr2,
        });
    }
    PaillierPhases {
        modulus_bits: REGISTRY_PAILLIER_BITS,
        rows: sample.row_count(),
        plain_bytes: sample.size_bytes(),
        keygen,
        calibration: calibration_modpow(),
        framings,
    }
}

/// Render the `engine` experiment as the `BENCH_report.json` document (hand-rolled:
/// the offline vendor set has no JSON crate, and the schema is small and flat).
#[allow(clippy::too_many_arguments)]
fn engine_json(
    smoke: bool,
    rows: usize,
    chunk_rows: usize,
    host_cpus: usize,
    measurements: &[(EngineMeasurement, f64, f64)],
    framing: &[(f2_bench::RunMeasurement, f64)],
    f2_phases: &F2Phases,
    streaming: &StreamingPhases,
    obs: &ObservabilityOverhead,
    phases: &PaillierPhases,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(out, "  \"workload\": {{ \"dataset\": \"Synthetic\", \"rows\": {rows}, \"chunk_rows\": {chunk_rows} }},");
    out.push_str("  \"engine\": [\n");
    for (i, (m, speedup, vs_single)) in measurements.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"backend\": \"{}\", \"workers\": {}, \"chunks\": {}, \"rows\": {}, \
             \"plain_bytes\": {}, \"encrypted_rows\": {}, \"wall_s\": {:.6}, \
             \"throughput_mb_s\": {:.4}, \"speedup_vs_1_worker\": {:.4}, \
             \"speedup_vs_single_shot\": {:.4} }}",
            m.scheme,
            m.workers,
            m.chunks,
            m.rows,
            m.plain_bytes,
            m.encrypted_rows,
            m.wall.as_secs_f64(),
            m.throughput_mb_s(),
            speedup,
            vs_single
        );
        out.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"paillier_framing\": [\n");
    for (i, (m, mb_s)) in framing.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"backend\": \"{}\", \"rows\": {}, \"plain_bytes\": {}, \
             \"wall_s\": {:.6}, \"throughput_mb_s\": {:.6} }}",
            m.scheme,
            m.rows,
            m.plain_bytes,
            m.wall.as_secs_f64(),
            mb_s
        );
        out.push_str(if i + 1 < framing.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"f2_phases\": {\n");
    let _ = writeln!(out, "    \"rows\": {},", f2_phases.rows);
    let _ = writeln!(out, "    \"chunk_rows\": {},", f2_phases.chunk_rows);
    let _ = writeln!(out, "    \"workers\": 1,");
    let _ = writeln!(out, "    \"plain_bytes\": {},", f2_phases.plain_bytes);
    let _ = writeln!(out, "    \"encrypted_rows\": {},", f2_phases.encrypted_rows);
    let _ = writeln!(out, "    \"max_s\": {:.6},", f2_phases.max.as_secs_f64());
    let _ = writeln!(out, "    \"sse_s\": {:.6},", f2_phases.sse.as_secs_f64());
    let _ = writeln!(out, "    \"syn_s\": {:.6},", f2_phases.syn.as_secs_f64());
    let _ = writeln!(out, "    \"fp_s\": {:.6},", f2_phases.fp.as_secs_f64());
    let _ = writeln!(out, "    \"wall_s\": {:.6},", f2_phases.wall.as_secs_f64());
    let _ = writeln!(out, "    \"throughput_mb_s\": {:.4}", f2_phases.throughput_mb_s);
    out.push_str("  },\n  \"streaming\": {\n");
    let _ = writeln!(out, "    \"rows\": {},", streaming.rows);
    let _ = writeln!(out, "    \"chunk_rows\": {},", streaming.chunk_rows);
    let _ = writeln!(out, "    \"chunks\": {},", streaming.chunks);
    let _ = writeln!(out, "    \"plain_bytes\": {},", streaming.plain_bytes);
    let _ = writeln!(out, "    \"stream_bytes\": {},", streaming.stream_bytes);
    let _ = writeln!(out, "    \"wall_s\": {:.6},", streaming.wall.as_secs_f64());
    let _ = writeln!(out, "    \"throughput_mb_s\": {:.4},", streaming.throughput_mb_s);
    let _ = writeln!(out, "    \"in_memory_mb_s\": {:.4},", streaming.in_memory_mb_s);
    let _ = writeln!(out, "    \"peak_chunk_rows\": {},", streaming.peak_chunk_rows);
    let _ = writeln!(out, "    \"peak_chunk_plain_bytes\": {},", streaming.peak_chunk_plain_bytes);
    let _ = writeln!(out, "    \"peak_chunk_output_rows\": {}", streaming.peak_chunk_output_rows);
    out.push_str("  },\n  \"observability\": {\n");
    let _ = writeln!(out, "    \"rows\": {},", obs.rows);
    let _ = writeln!(out, "    \"chunk_rows\": {},", obs.chunk_rows);
    let _ = writeln!(out, "    \"iters\": {},", obs.iters);
    let _ = writeln!(out, "    \"plain_bytes\": {},", obs.plain_bytes);
    let _ = writeln!(out, "    \"noop_wall_s\": {:.6},", obs.noop_wall.as_secs_f64());
    let _ =
        writeln!(out, "    \"instrumented_wall_s\": {:.6},", obs.instrumented_wall.as_secs_f64());
    let _ = writeln!(out, "    \"noop_mb_s\": {:.4},", obs.noop_mb_s);
    let _ = writeln!(out, "    \"instrumented_mb_s\": {:.4},", obs.instrumented_mb_s);
    let _ = writeln!(out, "    \"overhead_frac\": {:.4}", obs.overhead_frac);
    out.push_str("  },\n  \"paillier\": {\n");
    let _ = writeln!(out, "    \"modulus_bits\": {},", phases.modulus_bits);
    let _ = writeln!(out, "    \"rows\": {},", phases.rows);
    let _ = writeln!(out, "    \"plain_bytes\": {},", phases.plain_bytes);
    let _ = writeln!(out, "    \"keygen_s\": {:.6},", phases.keygen.as_secs_f64());
    let _ = writeln!(out, "    \"calibration_modpow_s\": {:.6},", phases.calibration.as_secs_f64());
    out.push_str("    \"framings\": [\n");
    for (i, f) in phases.framings.iter().enumerate() {
        let _ = write!(
            out,
            "      {{ \"backend\": \"{}\", \"encrypt_s\": {:.6}, \"encrypt_mb_s\": {:.6}, \
             \"decrypt_s\": {:.6}, \"decrypt_mb_s\": {:.6}, \"pr2_encrypt_mb_s\": {:.6}, \
             \"speedup_vs_pr2\": {:.2} }}",
            f.backend,
            f.encrypt.as_secs_f64(),
            f.encrypt_mb_s,
            f.decrypt.as_secs_f64(),
            f.decrypt_mb_s,
            f.pr2_encrypt_mb_s,
            f.speedup_vs_pr2
        );
        out.push_str(if i + 1 < phases.framings.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "fig6",
            "fig7",
            "fig8",
            "fig9a",
            "fig9b",
            "fig9c",
            "fig9d",
            "fig10",
            "local_vs_outsource",
            "security",
            "engine",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    } else {
        args
    };
    for exp in wanted {
        match exp.as_str() {
            "table1" => table1(),
            "fig6" => fig6(),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9a" => fig9_alpha(Dataset::Customer, 4_000 * scale(), "a"),
            "fig9b" => fig9_alpha(Dataset::Orders, 8_000 * scale(), "b"),
            "fig9c" => fig9_size(Dataset::Customer, &[1_000, 2_000, 4_000, 8_000, 12_000], "c"),
            "fig9d" => fig9_size(Dataset::Orders, &[4_000, 8_000, 12_000, 16_000, 20_000], "d"),
            "fig10" => fig10(),
            "local_vs_outsource" => local_vs_outsource(),
            "security" => security(),
            "engine" => engine(),
            other => eprintln!("unknown experiment `{other}` — see --help in the source header"),
        }
    }
}
