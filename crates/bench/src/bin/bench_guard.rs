//! `bench_guard` — fail CI when the Paillier or F² hot paths regress.
//!
//! Usage:
//! ```text
//! cargo run --release -p f2-bench --bin bench_guard -- <baseline.json> <fresh.json> [max_regression]
//! ```
//!
//! Compares the `paillier` and `f2_phases` sections of a freshly generated
//! `BENCH_report.json` against the committed baseline and exits non-zero if the
//! Paillier encrypt throughput of any framing, or the F² engine throughput on the
//! tracked 10k-row workload, dropped by more than `max_regression` (default `0.20`,
//! i.e. 20%). Both sections are measured on fixed workloads (same modulus size and
//! sampled rows; same row count and chunking) in both smoke and full mode, so a
//! smoke-mode CI run is directly comparable to the committed full-mode report.
//!
//! Throughput is **hardware-normalized** before comparison: each report carries a
//! `calibration_modpow_s` field (a fixed-operand modular exponentiation timed in
//! the same run), and the guard compares `encrypt_mb_s × calibration_modpow_s`.
//! Both factors scale with the host's single-thread speed, so the product is a
//! machine-independent "work per exponentiation-unit" ratio — a CI runner slower
//! than the machine that committed the baseline does not fail the gate, and a
//! faster one cannot mask a real regression. If either report predates the
//! calibration field, the guard falls back to raw MB/s with a warning.
//!
//! A baseline without a `paillier` section passes vacuously (bootstrap case: the
//! first report generated after this guard was introduced); a *fresh* report
//! without one is an error — the report generator must always emit it.
//!
//! The guard also holds an **absolute telemetry ceiling**: the fresh report's
//! `observability.overhead_frac` (instrumented vs no-op wall clock of the tracked
//! workload, both timed in the same run) must stay at or under 3%. No baseline is
//! consulted for this check — the ratio is host-independent by construction.
//!
//! Parsing is a small anchored scanner rather than a JSON parser: the offline
//! vendor set has no JSON crate, and `report` writes the document with a fixed
//! shape (`"backend": "<name>",` … `"encrypt_mb_s": <num>`).

use std::process::ExitCode;

/// The framings whose throughput the guard tracks.
const FRAMINGS: [&str; 2] = ["paillier", "paillier-packed"];

/// Default tolerated fractional regression before the guard fails.
const DEFAULT_MAX_REGRESSION: f64 = 0.20;

/// Absolute ceiling on telemetry overhead: the fresh report's
/// `observability.overhead_frac` (instrumented vs no-op wall clock on the tracked
/// workload, both measured in the same run) may not exceed 3%. Unlike the
/// throughput floors this needs no baseline or hardware normalization — both
/// sides of the ratio come from the same host and run.
const OBS_MAX_OVERHEAD_FRAC: f64 = 0.03;

/// The text of a report from its `"paillier"` section onward, if present.
fn paillier_section(report: &str) -> Option<&str> {
    report.find("\"paillier\": {").map(|at| &report[at..])
}

/// The text of a report from its `"f2_phases"` section onward, if present. The slice
/// stops at the next top-level section so a number is never read past it.
fn f2_phases_section(report: &str) -> Option<&str> {
    section(report, "\"f2_phases\": {")
}

/// The text of a report's `"streaming"` section, if present (same slicing rules).
fn streaming_section(report: &str) -> Option<&str> {
    section(report, "\"streaming\": {")
}

/// The text of a report's `"observability"` section, if present (same slicing
/// rules).
fn observability_section(report: &str) -> Option<&str> {
    section(report, "\"observability\": {")
}

/// The measured telemetry overhead fraction inside an `observability` section.
fn obs_overhead_frac(section: &str) -> Option<f64> {
    float_after(section, "\"overhead_frac\": ")
}

fn section<'a>(report: &'a str, anchor: &str) -> Option<&'a str> {
    let at = report.find(anchor)?;
    let rest = &report[at..];
    let end = rest.find("\n  }").map_or(rest.len(), |e| e + 4);
    Some(&rest[..end])
}

/// The tracked F² engine throughput (MB/s) inside an `f2_phases` section.
fn f2_throughput_mb_s(section: &str) -> Option<f64> {
    float_after(section, "\"throughput_mb_s\": ")
}

/// `encrypt_mb_s` of one framing inside a `paillier` section.
fn framing_encrypt_mb_s(section: &str, backend: &str) -> Option<f64> {
    let entry_anchor = format!("\"backend\": \"{backend}\",");
    let after_entry = &section[section.find(&entry_anchor)? + entry_anchor.len()..];
    float_after(after_entry, "\"encrypt_mb_s\": ")
}

/// The section's same-run hardware calibration (seconds), if recorded.
fn calibration_s(section: &str) -> Option<f64> {
    float_after(section, "\"calibration_modpow_s\": ")
}

/// First `<key><number>` occurrence after the start of `text`.
fn float_after(text: &str, key: &str) -> Option<f64> {
    let after_key = &text[text.find(key)? + key.len()..];
    let end = after_key.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    after_key[..end].parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, fresh_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(f)) => (b, f),
        _ => {
            eprintln!("usage: bench_guard <baseline.json> <fresh.json> [max_regression]");
            return ExitCode::from(2);
        }
    };
    let max_regression: f64 = match args.get(2) {
        Some(raw) => match raw.parse() {
            Ok(v) if (0.0..1.0).contains(&v) => v,
            _ => {
                eprintln!("bench_guard: max_regression must be a fraction in [0, 1), got {raw}");
                return ExitCode::from(2);
            }
        },
        None => DEFAULT_MAX_REGRESSION,
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let baseline = read(baseline_path);
    let fresh = read(fresh_path);

    let Some(base_section) = paillier_section(&baseline) else {
        println!(
            "bench_guard: baseline {baseline_path} has no \"paillier\" section \
             (pre-guard report); passing"
        );
        return ExitCode::SUCCESS;
    };
    let Some(fresh_section) = paillier_section(&fresh) else {
        eprintln!("bench_guard: fresh report {fresh_path} is missing the \"paillier\" section");
        return ExitCode::from(2);
    };

    // Hardware normalization: multiply each side's MB/s by its own same-run
    // calibration seconds, cancelling the host's absolute speed.
    let calibrations = (calibration_s(base_section), calibration_s(fresh_section));
    let (base_scale, fresh_scale, unit) = match calibrations {
        (Some(b), Some(f)) if b > 0.0 && f > 0.0 => (b, f, "MB/modpow"),
        _ => {
            println!(
                "bench_guard: calibration_modpow_s missing on one side; \
                 comparing raw MB/s (hardware-dependent)"
            );
            (1.0, 1.0, "MB/s")
        }
    };

    let mut failed = false;
    for backend in FRAMINGS {
        let Some(base) = framing_encrypt_mb_s(base_section, backend) else {
            println!("bench_guard: baseline has no `{backend}` framing; skipping it");
            continue;
        };
        let Some(now) = framing_encrypt_mb_s(fresh_section, backend) else {
            eprintln!("bench_guard: fresh report has no `{backend}` framing");
            failed = true;
            continue;
        };
        let base = base * base_scale;
        let now = now * fresh_scale;
        let floor = base * (1.0 - max_regression);
        let verdict = if now < floor { "REGRESSION" } else { "ok" };
        println!(
            "bench_guard: {backend:<18} baseline {base:>12.6} {unit} | now {now:>12.6} {unit} \
             | floor {floor:>12.6} | {verdict}"
        );
        failed |= now < floor;
    }
    // F² engine floor: same normalization, same tolerance. A baseline predating the
    // `f2_phases` section passes vacuously (bootstrap); a fresh report without it is
    // an error — the generator always emits it.
    match (f2_phases_section(&baseline), f2_phases_section(&fresh)) {
        (None, _) => {
            println!(
                "bench_guard: baseline {baseline_path} has no \"f2_phases\" section \
                 (pre-guard report); skipping the f2 floor"
            );
        }
        (Some(_), None) => {
            eprintln!(
                "bench_guard: fresh report {fresh_path} is missing the \"f2_phases\" section"
            );
            failed = true;
        }
        (Some(base_f2), Some(fresh_f2)) => {
            match (f2_throughput_mb_s(base_f2), f2_throughput_mb_s(fresh_f2)) {
                (Some(base), Some(now)) => {
                    let base = base * base_scale;
                    let now = now * fresh_scale;
                    let floor = base * (1.0 - max_regression);
                    let verdict = if now < floor { "REGRESSION" } else { "ok" };
                    println!(
                        "bench_guard: {:<18} baseline {base:>12.6} {unit} | now {now:>12.6} {unit} \
                         | floor {floor:>12.6} | {verdict}",
                        "f2-engine"
                    );
                    failed |= now < floor;
                }
                _ => {
                    eprintln!("bench_guard: f2_phases section lacks throughput_mb_s");
                    failed = true;
                }
            }
        }
    }

    // Streaming-path floor: the constant-memory `run_streaming` pipeline on the
    // same fixed workload, same normalization and tolerance. Bootstrap rule as for
    // `f2_phases`: missing in the baseline passes, missing in the fresh report
    // fails (the generator always emits it).
    match (streaming_section(&baseline), streaming_section(&fresh)) {
        (None, _) => {
            println!(
                "bench_guard: baseline {baseline_path} has no \"streaming\" section \
                 (pre-streaming report); skipping the streaming floor"
            );
        }
        (Some(_), None) => {
            eprintln!(
                "bench_guard: fresh report {fresh_path} is missing the \"streaming\" section"
            );
            failed = true;
        }
        (Some(base_s), Some(fresh_s)) => {
            match (f2_throughput_mb_s(base_s), f2_throughput_mb_s(fresh_s)) {
                (Some(base), Some(now)) => {
                    let base = base * base_scale;
                    let now = now * fresh_scale;
                    let floor = base * (1.0 - max_regression);
                    let verdict = if now < floor { "REGRESSION" } else { "ok" };
                    println!(
                        "bench_guard: {:<18} baseline {base:>12.6} {unit} | now {now:>12.6} {unit} \
                         | floor {floor:>12.6} | {verdict}",
                        "f2-streaming"
                    );
                    failed |= now < floor;
                }
                _ => {
                    eprintln!("bench_guard: streaming section lacks throughput_mb_s");
                    failed = true;
                }
            }
        }
    }

    // Telemetry-overhead ceiling: absolute, on the fresh report only — the
    // `observability` section compares instrumented vs no-op wall clock measured in
    // the same run, so host speed cancels and no baseline is needed. A fresh report
    // without the section fails (the generator always emits it).
    match observability_section(&fresh).map(obs_overhead_frac) {
        Some(Some(frac)) => {
            let verdict = if frac > OBS_MAX_OVERHEAD_FRAC { "REGRESSION" } else { "ok" };
            println!(
                "bench_guard: {:<18} overhead {:>11.2}% | ceiling {:>11.0}% | {verdict}",
                "f2-telemetry",
                frac * 100.0,
                OBS_MAX_OVERHEAD_FRAC * 100.0
            );
            failed |= frac > OBS_MAX_OVERHEAD_FRAC;
        }
        Some(None) => {
            eprintln!("bench_guard: observability section lacks overhead_frac");
            failed = true;
        }
        None => {
            eprintln!(
                "bench_guard: fresh report {fresh_path} is missing the \"observability\" section"
            );
            failed = true;
        }
    }

    if failed {
        eprintln!(
            "bench_guard: hot-path throughput regressed more than \
             {:.0}% vs {baseline_path}",
            max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "engine": [ { "backend": "f2", "throughput_mb_s": 1.2 } ],
  "paillier_framing": [
    { "backend": "paillier", "throughput_mb_s": 0.002561 }
  ],
  "f2_phases": {
    "rows": 10000,
    "chunk_rows": 512,
    "workers": 1,
    "max_s": 0.009000,
    "sse_s": 0.050000,
    "syn_s": 0.000100,
    "fp_s": 0.016000,
    "wall_s": 0.083000,
    "throughput_mb_s": 6.7500
  },
  "observability": {
    "rows": 10000,
    "chunk_rows": 512,
    "iters": 5,
    "noop_wall_s": 0.110000,
    "instrumented_wall_s": 0.111500,
    "noop_mb_s": 5.0909,
    "instrumented_mb_s": 5.0224,
    "overhead_frac": 0.0136
  },
  "paillier": {
    "modulus_bits": 512,
    "rows": 8,
    "keygen_s": 0.031000,
    "calibration_modpow_s": 0.000400,
    "framings": [
      { "backend": "paillier", "encrypt_s": 0.001, "encrypt_mb_s": 0.388400, "decrypt_s": 0.002, "decrypt_mb_s": 0.2, "pr2_encrypt_mb_s": 0.002561, "speedup_vs_pr2": 151.66 },
      { "backend": "paillier-packed", "encrypt_s": 0.001, "encrypt_mb_s": 0.472900, "decrypt_s": 0.002, "decrypt_mb_s": 0.3, "pr2_encrypt_mb_s": 0.009064, "speedup_vs_pr2": 52.17 }
    ]
  }
}
"#;

    #[test]
    fn extracts_framing_throughputs() {
        let section = paillier_section(SAMPLE).expect("section present");
        assert_eq!(framing_encrypt_mb_s(section, "paillier"), Some(0.3884));
        assert_eq!(framing_encrypt_mb_s(section, "paillier-packed"), Some(0.4729));
        assert_eq!(framing_encrypt_mb_s(section, "nonexistent"), None);
    }

    #[test]
    fn per_cell_anchor_does_not_match_packed_entry() {
        // `"backend": "paillier",` must not resolve inside the packed entry, and the
        // scanner must skip the legacy `paillier_framing` section entirely.
        let section = paillier_section(SAMPLE).unwrap();
        let per_cell = framing_encrypt_mb_s(section, "paillier").unwrap();
        assert!((per_cell - 0.3884).abs() < 1e-9);
    }

    #[test]
    fn reports_without_section_are_detected() {
        assert!(paillier_section("{ \"engine\": [] }").is_none());
        assert!(paillier_section(SAMPLE).is_some());
    }

    #[test]
    fn extracts_calibration() {
        let section = paillier_section(SAMPLE).unwrap();
        assert_eq!(calibration_s(section), Some(0.0004));
        assert_eq!(calibration_s("{ \"rows\": 8 }"), None);
    }

    #[test]
    fn extracts_observability_overhead() {
        let section = observability_section(SAMPLE).expect("observability present");
        assert_eq!(obs_overhead_frac(section), Some(0.0136));
        // The slice must stop before the paillier section so its numbers can never
        // leak into the ceiling check.
        assert!(!section.contains("paillier"));
        assert!(observability_section("{ \"engine\": [] }").is_none());
    }

    #[test]
    fn extracts_f2_throughput() {
        let section = f2_phases_section(SAMPLE).expect("f2_phases present");
        assert_eq!(f2_throughput_mb_s(section), Some(6.75));
        // The slice must stop before the paillier section so its numbers can never
        // leak into the f2 floor.
        assert!(!section.contains("paillier"));
        assert!(f2_phases_section("{ \"engine\": [] }").is_none());
    }
}
