//! # f2-bench — harness reproducing the F² evaluation (paper §5)
//!
//! The `report` binary regenerates every table and figure of the paper's evaluation
//! section on generated workloads (see DESIGN.md §4 for the experiment index), and the
//! Criterion benches under `benches/` provide statistically sound timings for the same
//! measurements. Absolute numbers differ from the paper (different hardware, Java vs
//! Rust, generated vs dumped data); the *shapes* — which step dominates on which
//! dataset, how overhead reacts to α and to data size, how F² compares to the AES and
//! Paillier baselines — are the reproduction target and are recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use f2_core::{EncryptionReport, F2Config, F2Encryptor};
use f2_crypto::{DeterministicCipher, MasterKey, PaillierKeyPair};
use f2_datagen::Dataset;
use f2_fd::tane::{Tane, TaneConfig};
use f2_relation::{Record, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Measurement of one F² encryption run.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// The dataset name.
    pub dataset: &'static str,
    /// Rows of the plaintext table.
    pub rows: usize,
    /// Plaintext size in bytes.
    pub plain_bytes: usize,
    /// The α used.
    pub alpha: f64,
    /// The full encryption report (timings + overhead).
    pub report: EncryptionReport,
    /// Rows of the encrypted table.
    pub encrypted_rows: usize,
}

/// Run F² once on `rows` rows of `dataset` with the given parameters.
pub fn measure_f2(dataset: Dataset, rows: usize, alpha: f64, split: usize, seed: u64) -> RunMeasurement {
    let table = dataset.generate(rows, seed);
    measure_f2_on(&table, dataset.name(), alpha, split, seed)
}

/// Run F² once on an already-generated table.
pub fn measure_f2_on(
    table: &Table,
    dataset: &'static str,
    alpha: f64,
    split: usize,
    seed: u64,
) -> RunMeasurement {
    let config = F2Config::new(alpha, split).expect("valid config").with_seed(seed);
    let encryptor = F2Encryptor::new(config, MasterKey::from_seed(seed));
    let outcome = encryptor.encrypt(table).expect("encryption succeeds");
    RunMeasurement {
        dataset,
        rows: table.row_count(),
        plain_bytes: table.size_bytes(),
        alpha,
        report: outcome.report,
        encrypted_rows: outcome.encrypted.row_count(),
    }
}

/// Encrypt every cell with the deterministic AES baseline and return the wall time.
pub fn time_aes_baseline(table: &Table, seed: u64) -> Duration {
    let master = MasterKey::from_seed(seed);
    let ciphers: Vec<DeterministicCipher> = (0..table.arity())
        .map(|a| DeterministicCipher::new(&master.deterministic_key(a)))
        .collect();
    let start = Instant::now();
    let mut out = Vec::with_capacity(table.row_count());
    for (_, rec) in table.iter() {
        out.push(Record::new(
            rec.values()
                .iter()
                .enumerate()
                .map(|(a, v)| ciphers[a].encrypt_value(v))
                .collect(),
        ));
    }
    std::hint::black_box(&out);
    start.elapsed()
}

/// Encrypt a sample of cells with Paillier and extrapolate to the whole table.
///
/// Textbook Paillier at realistic modulus sizes is so slow that encrypting every cell
/// of even a small table would take hours (the paper makes the same observation:
/// "Paillier … cannot finish within one day when the data size reaches 0.653GB"), so
/// the harness measures `sample_cells` cells and scales linearly.
pub fn time_paillier_baseline_extrapolated(
    table: &Table,
    modulus_bits: usize,
    sample_cells: usize,
    seed: u64,
) -> Duration {
    let mut rng = StdRng::seed_from_u64(seed);
    let keypair = PaillierKeyPair::generate(modulus_bits, &mut rng).expect("keygen");
    let total_cells = table.row_count() * table.arity();
    if total_cells == 0 {
        return Duration::ZERO;
    }
    let sample = sample_cells.min(total_cells).max(1);
    let start = Instant::now();
    let mut done = 0usize;
    'outer: for (_, rec) in table.iter() {
        for v in rec.values() {
            let c = keypair.public().encrypt_value(v, &mut rng).expect("encrypt");
            std::hint::black_box(&c);
            done += 1;
            if done >= sample {
                break 'outer;
            }
        }
    }
    let elapsed = start.elapsed();
    elapsed.mul_f64(total_cells as f64 / done as f64)
}

/// Time TANE FD discovery on a table (optionally capping the LHS size so wide tables
/// stay tractable; the same cap is applied to plaintext and ciphertext so the overhead
/// ratio of Figure 10 is meaningful).
pub fn time_fd_discovery(table: &Table, max_lhs: Option<usize>) -> (Duration, usize) {
    let tane = Tane::with_config(TaneConfig { max_lhs_size: max_lhs });
    let start = Instant::now();
    let fds = tane.discover(table);
    (start.elapsed(), fds.len())
}

/// Format a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_f2_produces_consistent_report() {
        let m = measure_f2(Dataset::Synthetic, 150, 0.5, 2, 3);
        assert_eq!(m.rows, 150);
        assert_eq!(m.encrypted_rows, m.report.overhead.total_rows());
        assert!(m.report.mas_count >= 1);
        assert!(m.plain_bytes > 0);
    }

    #[test]
    fn baselines_produce_nonzero_times() {
        let t = Dataset::Orders.generate(60, 1);
        assert!(time_aes_baseline(&t, 1) > Duration::ZERO);
        let p = time_paillier_baseline_extrapolated(&t, 128, 20, 1);
        assert!(p > Duration::ZERO);
        let (d, fds) = time_fd_discovery(&t, Some(2));
        assert!(d > Duration::ZERO);
        assert!(fds > 0);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500s");
    }
}
