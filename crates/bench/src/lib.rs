//! # f2-bench — harness reproducing the F² evaluation (paper §5)
//!
//! The `report` binary regenerates every table and figure of the paper's evaluation
//! section on generated workloads (see DESIGN.md §4 for the experiment index), and the
//! Criterion benches under `benches/` provide statistically sound timings for the same
//! measurements. Absolute numbers differ from the paper (different hardware, Java vs
//! Rust, generated vs dumped data); the *shapes* — which step dominates on which
//! dataset, how overhead reacts to α and to data size, how F² compares to the AES and
//! Paillier baselines — are the reproduction target and are recorded in EXPERIMENTS.md.
//!
//! All timing goes through one generic entry point, [`measure_scheme_on`], which
//! accepts **any** [`Scheme`] backend; [`backend_registry`] enumerates the paper's
//! four backends (F², deterministic AES, probabilistic PRF, Paillier) so the report
//! and the benches iterate a registry instead of hard-coding per-backend paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use f2_core::{ChunkedScheme, DetScheme, EncryptionReport, PaillierScheme, ProbScheme, Scheme, F2};
use f2_crypto::MasterKey;
use f2_datagen::Dataset;
use f2_engine::{Engine, EngineConfig};
use f2_fd::tane::{Tane, TaneConfig};
use f2_relation::Table;
use std::time::{Duration, Instant};

/// Measurement of one encryption run of some [`Scheme`].
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// The scheme's [`Scheme::name`].
    pub scheme: String,
    /// The dataset name.
    pub dataset: &'static str,
    /// Rows of the plaintext table the measurement describes.
    pub rows: usize,
    /// Plaintext size in bytes.
    pub plain_bytes: usize,
    /// The scheme's own encryption report (per-step timings + overhead). For sampled
    /// runs this describes the sample, not the extrapolated whole.
    pub report: EncryptionReport,
    /// Rows of the encrypted table.
    pub encrypted_rows: usize,
    /// Wall-clock time of `Scheme::encrypt` (extrapolated for sampled runs).
    pub wall: Duration,
}

/// Run any scheme once on `rows` rows of `dataset`.
pub fn measure_scheme(
    scheme: &dyn Scheme,
    dataset: Dataset,
    rows: usize,
    seed: u64,
) -> RunMeasurement {
    let table = dataset.generate(rows, seed);
    measure_scheme_on(scheme, &table, dataset.name())
}

/// Run any scheme once on an already-generated table.
pub fn measure_scheme_on(
    scheme: &dyn Scheme,
    table: &Table,
    dataset: &'static str,
) -> RunMeasurement {
    let start = Instant::now();
    let outcome = scheme.encrypt(table).expect("encryption succeeds");
    let wall = start.elapsed();
    RunMeasurement {
        scheme: scheme.name().to_owned(),
        dataset,
        rows: table.row_count(),
        plain_bytes: table.size_bytes(),
        report: outcome.report,
        encrypted_rows: outcome.encrypted.row_count(),
        wall,
    }
}

/// Encrypt only the first `sample_rows` rows and extrapolate the wall time linearly to
/// the whole table.
///
/// Used for Paillier: even on the Montgomery/REDC engine with pooled blinding
/// factors, textbook Paillier at realistic modulus sizes stays an order of magnitude
/// slower than the symmetric backends (the paper makes the same observation:
/// "Paillier … cannot finish within one day when the data size reaches 0.653GB"),
/// so the report samples it rather than let one backend dominate the wall clock.
/// `rows`, `plain_bytes` and `encrypted_rows` describe the whole table; `report`
/// keeps the sample's unscaled measurements.
pub fn measure_scheme_sampled(
    scheme: &dyn Scheme,
    table: &Table,
    dataset: &'static str,
    sample_rows: usize,
) -> RunMeasurement {
    let total_rows = table.row_count();
    if total_rows == 0 || sample_rows >= total_rows {
        return measure_scheme_on(scheme, table, dataset);
    }
    let sample = table.truncated(sample_rows.max(1));
    let mut m = measure_scheme_on(scheme, &sample, dataset);
    let factor = total_rows as f64 / sample.row_count() as f64;
    m.rows = total_rows;
    m.plain_bytes = table.size_bytes();
    m.encrypted_rows = (m.encrypted_rows as f64 * factor).round() as usize;
    m.wall = m.wall.mul_f64(factor);
    m
}

/// One entry of the backend registry: a scheme plus its measurement policy.
pub struct RegisteredBackend {
    /// The backend.
    pub scheme: Box<dyn Scheme>,
    /// If set, measure on this many rows and extrapolate ([`measure_scheme_sampled`]);
    /// backends much slower than the rest of the registry (Paillier) set this.
    pub sample_rows: Option<usize>,
}

impl RegisteredBackend {
    /// Measure this backend on a table according to its policy.
    pub fn measure(&self, table: &Table, dataset: &'static str) -> RunMeasurement {
        match self.sample_rows {
            Some(sample) => measure_scheme_sampled(self.scheme.as_ref(), table, dataset, sample),
            None => measure_scheme_on(self.scheme.as_ref(), table, dataset),
        }
    }
}

/// Paillier modulus size used by the registry (the paper's realistic setting).
pub const REGISTRY_PAILLIER_BITS: usize = 512;

/// Rows Paillier is sampled on before extrapolating.
pub const REGISTRY_PAILLIER_SAMPLE_ROWS: usize = 8;

/// The paper's four backends (Figure 8) plus the packed-row Paillier framing, ready to
/// be iterated by the report and the benches: F² (with the given α and ϖ),
/// deterministic AES, probabilistic PRF, and 512-bit Paillier in both framings
/// (sampled, see [`REGISTRY_PAILLIER_SAMPLE_ROWS`]). `paillier` vs `paillier-packed`
/// on the same rows is the cell-batching comparison.
pub fn backend_registry(alpha: f64, split: usize, seed: u64) -> Vec<RegisteredBackend> {
    backend_registry_with(alpha, split, seed, REGISTRY_PAILLIER_BITS, REGISTRY_PAILLIER_SAMPLE_ROWS)
}

/// [`backend_registry`] with an explicit Paillier modulus size and sampling policy
/// (tests and quick runs use small moduli; the report uses the realistic default).
pub fn backend_registry_with(
    alpha: f64,
    split: usize,
    seed: u64,
    paillier_bits: usize,
    paillier_sample_rows: usize,
) -> Vec<RegisteredBackend> {
    let master = MasterKey::from_seed(seed);
    vec![
        RegisteredBackend {
            scheme: Box::new(
                F2::builder()
                    .alpha(alpha)
                    .split_factor(split)
                    .seed(seed)
                    .master_key(master.clone())
                    .build()
                    .expect("valid F2 parameters"),
            ),
            sample_rows: None,
        },
        RegisteredBackend { scheme: Box::new(DetScheme::new(master.clone())), sample_rows: None },
        RegisteredBackend { scheme: Box::new(ProbScheme::new(master, seed)), sample_rows: None },
        RegisteredBackend {
            scheme: Box::new(PaillierScheme::new(paillier_bits, seed).expect("valid modulus")),
            sample_rows: Some(paillier_sample_rows),
        },
        RegisteredBackend {
            scheme: Box::new(
                PaillierScheme::new(paillier_bits, seed).expect("valid modulus").packed(),
            ),
            sample_rows: Some(paillier_sample_rows),
        },
    ]
}

/// Worker counts the engine throughput experiments sweep.
pub const ENGINE_WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

/// The engine-capable backends measured by the streaming-throughput experiments.
/// Paillier is excluded here — even on the Montgomery engine it is ~15–30× slower
/// than the symmetric backends and would dominate the sweep's wall clock; its
/// framing comparison lives in [`backend_registry`] and its per-phase breakdown in
/// the report's `paillier` section. (It *is* engine-capable: each chunk worker's
/// `encrypt` call batches the chunk through one blinding pool.)
pub fn engine_backends(alpha: f64, split: usize, seed: u64) -> Vec<Box<dyn ChunkedScheme>> {
    let master = MasterKey::from_seed(seed);
    vec![
        Box::new(
            F2::builder()
                .alpha(alpha)
                .split_factor(split)
                .seed(seed)
                .master_key(master.clone())
                .build()
                .expect("valid F2 parameters"),
        ),
        Box::new(DetScheme::new(master.clone())),
        Box::new(ProbScheme::new(master, seed)),
    ]
}

/// Measurement of one [`Engine`] run over some [`ChunkedScheme`].
#[derive(Debug, Clone)]
pub struct EngineMeasurement {
    /// The backend's [`Scheme::name`].
    pub scheme: String,
    /// Worker threads used.
    pub workers: usize,
    /// Rows per chunk.
    pub chunk_rows: usize,
    /// Chunks the table was sharded into.
    pub chunks: usize,
    /// Rows of the plaintext table.
    pub rows: usize,
    /// Plaintext size in bytes.
    pub plain_bytes: usize,
    /// Rows of the encrypted table.
    pub encrypted_rows: usize,
    /// Wall-clock time of the whole pipeline run.
    pub wall: Duration,
}

impl EngineMeasurement {
    /// Plaintext megabytes encrypted per wall-clock second.
    pub fn throughput_mb_s(&self) -> f64 {
        self.plain_bytes as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Run the streaming engine once over `table` and record pipeline-level throughput.
pub fn measure_engine(
    scheme: &dyn ChunkedScheme,
    table: &Table,
    workers: usize,
    chunk_rows: usize,
    seed: u64,
) -> EngineMeasurement {
    let engine =
        Engine::new(EngineConfig { workers, chunk_rows, seed }).expect("valid engine config");
    let start = Instant::now();
    let run = engine.encrypt(scheme, table).expect("engine encryption succeeds");
    let wall = start.elapsed();
    EngineMeasurement {
        scheme: scheme.name().to_owned(),
        workers,
        chunk_rows,
        chunks: run.chunks.len(),
        rows: table.row_count(),
        plain_bytes: table.size_bytes(),
        encrypted_rows: run.outcome.encrypted.row_count(),
        wall,
    }
}

/// Time TANE FD discovery on a table (optionally capping the LHS size so wide tables
/// stay tractable; the same cap is applied to plaintext and ciphertext so the overhead
/// ratio of Figure 10 is meaningful).
pub fn time_fd_discovery(table: &Table, max_lhs: Option<usize>) -> (Duration, usize) {
    let tane = Tane::with_config(TaneConfig { max_lhs_size: max_lhs });
    let start = Instant::now();
    let fds = tane.discover(table);
    (start.elapsed(), fds.len())
}

/// Format a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_scheme_produces_consistent_report_for_f2() {
        let scheme = F2::builder().alpha(0.5).split_factor(2).seed(3).build().unwrap();
        let m = measure_scheme(&scheme, Dataset::Synthetic, 150, 3);
        assert_eq!(m.scheme, "f2");
        assert_eq!(m.rows, 150);
        assert_eq!(m.encrypted_rows, m.report.overhead.total_rows());
        assert!(m.report.mas_count >= 1);
        assert!(m.plain_bytes > 0);
        assert!(m.wall >= m.report.timings.total());
    }

    #[test]
    fn registry_measures_every_backend() {
        let table = Dataset::Orders.generate(40, 1);
        // Small Paillier modulus: the realistic 512-bit default is a release-mode
        // affair, and this test runs under the debug profile.
        let registry = backend_registry_with(0.5, 2, 1, 64, 4);
        let names: Vec<String> = registry.iter().map(|b| b.scheme.name().to_owned()).collect();
        assert_eq!(
            names,
            ["f2", "deterministic-aes", "probabilistic-prf", "paillier", "paillier-packed"]
        );
        for backend in &registry {
            let m = backend.measure(&table, "Orders");
            assert_eq!(m.rows, 40, "{}", m.scheme);
            assert!(m.wall > Duration::ZERO, "{}", m.scheme);
            assert!(m.encrypted_rows >= 40, "{}", m.scheme);
        }
    }

    #[test]
    fn sampled_measurement_extrapolates() {
        let table = Dataset::Customer.generate(60, 2);
        let scheme = DetScheme::new(MasterKey::from_seed(2));
        let m = measure_scheme_sampled(&scheme, &table, "Customer", 15);
        assert_eq!(m.rows, 60);
        assert_eq!(m.encrypted_rows, 60);
        assert_eq!(m.report.overhead.original_rows, 15);
        // sample >= table size degrades to a full measurement
        let full = measure_scheme_sampled(&scheme, &table, "Customer", 100);
        assert_eq!(full.report.overhead.original_rows, 60);
    }

    #[test]
    fn engine_measurement_covers_every_engine_backend() {
        let table = Dataset::Synthetic.generate(60, 5);
        for scheme in engine_backends(0.5, 2, 5) {
            for workers in [1, 2] {
                let m = measure_engine(scheme.as_ref(), &table, workers, 16, 5);
                assert_eq!(m.workers, workers, "{}", m.scheme);
                assert_eq!(m.rows, 60, "{}", m.scheme);
                assert_eq!(m.chunks, 4, "{}", m.scheme);
                assert!(m.encrypted_rows >= 60, "{}", m.scheme);
                assert!(m.throughput_mb_s() > 0.0, "{}", m.scheme);
            }
        }
    }

    #[test]
    fn fd_discovery_timing() {
        let t = Dataset::Orders.generate(60, 1);
        let (d, fds) = time_fd_discovery(&t, Some(2));
        assert!(d > Duration::ZERO);
        assert!(fds > 0);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500s");
    }
}
