//! The empirical `Exp^freq` experiment.
//!
//! The harness plays the security game of §2.4 many times against a concrete encrypted
//! table: it samples a ciphertext cell combination uniformly from the rows that carry
//! original data, hands the adversary the public knowledge (ciphertext frequency plus
//! the full plaintext frequency distribution), and scores the guess against the ground
//! truth known from the encryption provenance. Dividing successes by trials estimates
//! `Pr[Exp^freq = 1]`, which α-security upper-bounds by α.

use crate::{Adversary, AdversaryKnowledge};
use f2_core::{EncryptionOutcome, F2Error, Scheme, SchemeOutcome};
use f2_relation::{AttrSet, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of an attack experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Number of game rounds played.
    pub trials: usize,
    /// Rounds the adversary won.
    pub successes: usize,
}

impl AttackOutcome {
    /// Empirical success probability.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

/// An experiment binding a plaintext table, an encrypted table, and the ground-truth
/// correspondence between their rows.
#[derive(Debug, Clone)]
pub struct AttackExperiment {
    /// The attribute set the game is played over (typically a MAS).
    pub attrs: AttrSet,
    knowledge: AdversaryKnowledge,
    /// (ciphertext combination, true plaintext combination) for every original row.
    ground_truth: Vec<(Vec<Value>, Vec<Value>)>,
}

impl AttackExperiment {
    /// Build the experiment for **any** encryption backend: the scheme's
    /// [`Scheme::real_rows`] mapping pairs each output row carrying original data with
    /// its source row, which becomes the game's ground truth. This is how the
    /// α-security experiment runs over `&dyn Scheme` — F², the deterministic AES
    /// baseline, and the probabilistic ciphers are all attacked through the same code
    /// path.
    ///
    /// Errors if the outcome does not belong to `scheme` (wrong backend's owner
    /// state), or if the claimed row mapping does not fit `plain`/`outcome` — e.g. a
    /// cell-wise scheme handed an F² outcome whose table has extra artificial rows.
    pub fn for_scheme(
        plain: &Table,
        scheme: &dyn Scheme,
        outcome: &SchemeOutcome,
        attrs: AttrSet,
    ) -> Result<Self, F2Error> {
        let mapping = scheme.real_rows(outcome)?;
        let mut ground_truth = Vec::with_capacity(mapping.len());
        for (out_row, orig_row) in mapping {
            if out_row >= outcome.encrypted.row_count() || orig_row >= plain.row_count() {
                return Err(F2Error::ProvenanceMismatch(format!(
                    "scheme `{}` maps output row {out_row} to original row {orig_row}, \
                     outside the {}-row encrypted / {}-row plaintext tables",
                    scheme.name(),
                    outcome.encrypted.row_count(),
                    plain.row_count()
                )));
            }
            let cipher = outcome.encrypted.row(out_row).expect("bounds checked").project(attrs);
            let plain_combo = plain.row(orig_row).expect("bounds checked").project(attrs);
            ground_truth.push((cipher, plain_combo));
        }
        Ok(Self::from_parts(plain, &outcome.encrypted, attrs, ground_truth))
    }

    /// Build the experiment for an F² encryption outcome: the ground truth pairs each
    /// original row's ciphertext combination with its plaintext combination.
    pub fn for_f2_outcome(plain: &Table, outcome: &EncryptionOutcome, attrs: AttrSet) -> Self {
        let ground_truth = outcome
            .provenance
            .real_rows()
            .into_iter()
            .map(|(out_row, orig_row)| {
                let cipher =
                    outcome.encrypted.row(out_row).expect("provenance row exists").project(attrs);
                let plain_combo = plain.row(orig_row).expect("original row exists").project(attrs);
                (cipher, plain_combo)
            })
            .collect();
        Self::from_parts(plain, &outcome.encrypted, attrs, ground_truth)
    }

    /// Build the experiment for any cell-wise encryption where output row `i`
    /// corresponds to plaintext row `i` (e.g. the deterministic AES baseline).
    pub fn for_row_aligned(plain: &Table, encrypted: &Table, attrs: AttrSet) -> Self {
        assert_eq!(plain.row_count(), encrypted.row_count());
        let ground_truth = (0..plain.row_count())
            .map(|r| {
                (
                    encrypted.row(r).expect("row").project(attrs),
                    plain.row(r).expect("row").project(attrs),
                )
            })
            .collect();
        Self::from_parts(plain, encrypted, attrs, ground_truth)
    }

    /// Number of `(ciphertext, plaintext)` ground-truth pairs the game samples from.
    pub fn ground_truth_len(&self) -> usize {
        self.ground_truth.len()
    }

    pub(crate) fn from_parts(
        plain: &Table,
        encrypted: &Table,
        attrs: AttrSet,
        ground_truth: Vec<(Vec<Value>, Vec<Value>)>,
    ) -> Self {
        let knowledge = AdversaryKnowledge {
            plaintext_frequencies: plain.frequency_histogram(attrs),
            ciphertext_frequencies: encrypted.frequency_histogram(attrs),
        };
        AttackExperiment { attrs, knowledge, ground_truth }
    }

    /// The adversary's background knowledge.
    pub fn knowledge(&self) -> &AdversaryKnowledge {
        &self.knowledge
    }

    /// Play the game `trials` times with the given adversary.
    pub fn run(&self, adversary: &dyn Adversary, trials: usize, seed: u64) -> AttackOutcome {
        if self.ground_truth.is_empty() {
            return AttackOutcome { trials: 0, successes: 0 };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut successes = 0;
        for _ in 0..trials {
            let idx = (rng.next_u64() % self.ground_truth.len() as u64) as usize;
            let (cipher, truth) = &self.ground_truth[idx];
            let freq = self.knowledge.ciphertext_frequencies.get(cipher).copied().unwrap_or(1);
            if let Some(guess) = adversary.guess(&self.knowledge, cipher, freq) {
                if &guess == truth {
                    successes += 1;
                }
            }
        }
        AttackOutcome { trials, successes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyAttacker, KerckhoffsAttacker};
    use f2_core::{F2Config, F2Encryptor};
    use f2_crypto::{DeterministicCipher, MasterKey};
    use f2_relation::{Record, Schema};

    /// A skewed single-MAS table: one dominant value, several rare ones.
    fn skewed_table() -> Table {
        let schema = Schema::from_names(["A", "B"]).unwrap();
        let mut rows = Vec::new();
        for _ in 0..12 {
            rows.push(Record::new(vec![Value::text("a1"), Value::text("b1")]));
        }
        for i in 0..4 {
            rows.push(Record::new(vec![
                Value::text(format!("x{i}")),
                Value::text(format!("y{i}")),
            ]));
            rows.push(Record::new(vec![
                Value::text(format!("x{i}")),
                Value::text(format!("y{i}")),
            ]));
        }
        Table::new(schema, rows).unwrap()
    }

    fn deterministic_encrypt(plain: &Table) -> Table {
        let master = MasterKey::from_seed(3);
        let ciphers: Vec<DeterministicCipher> = (0..plain.arity())
            .map(|a| DeterministicCipher::new(&master.deterministic_key(a)))
            .collect();
        let records = plain
            .rows()
            .iter()
            .map(|r| {
                Record::new(
                    r.values()
                        .iter()
                        .enumerate()
                        .map(|(a, v)| ciphers[a].encrypt_value(v))
                        .collect(),
                )
            })
            .collect();
        Table::new(plain.schema().encrypted(), records).unwrap()
    }

    #[test]
    fn frequency_attack_breaks_deterministic_encryption() {
        let plain = skewed_table();
        let encrypted = deterministic_encrypt(&plain);
        let exp = AttackExperiment::for_row_aligned(&plain, &encrypted, AttrSet::all(2));
        let outcome = exp.run(&FrequencyAttacker, 400, 1);
        // The dominant value (12 of 20 rows) is always identified, so the success rate
        // is well above one half.
        assert!(outcome.success_rate() > 0.55, "rate = {}", outcome.success_rate());
    }

    #[test]
    fn f2_bounds_attack_success_by_alpha() {
        let plain = skewed_table();
        let alpha = 0.5;
        let enc = F2Encryptor::new(F2Config::new(alpha, 2).unwrap(), MasterKey::from_seed(9));
        let out = enc.encrypt(&plain).unwrap();
        let mas = out.mas_sets[0];
        let exp = AttackExperiment::for_f2_outcome(&plain, &out, mas);
        for adversary in [&FrequencyAttacker as &dyn Adversary, &KerckhoffsAttacker] {
            let outcome = exp.run(adversary, 600, 2);
            // Allow statistical slack over the exact α bound.
            assert!(
                outcome.success_rate() <= alpha + 0.12,
                "{} broke alpha: {}",
                adversary.name(),
                outcome.success_rate()
            );
        }
    }

    #[test]
    fn for_scheme_runs_the_same_game_over_any_backend() {
        use f2_core::{DetScheme, Scheme, F2};
        let plain = skewed_table();
        let attrs = AttrSet::all(2);

        // Deterministic backend through the trait: broken exactly like the manual
        // row-aligned construction above.
        let det = DetScheme::new(MasterKey::from_seed(3));
        let det_outcome = det.encrypt(&plain).unwrap();
        let exp = AttackExperiment::for_scheme(&plain, &det, &det_outcome, attrs).unwrap();
        let det_rate = exp.run(&FrequencyAttacker, 400, 1).success_rate();
        assert!(det_rate > 0.55, "rate = {det_rate}");

        // F² through the trait: bounded by α (with statistical slack).
        let alpha = 0.5;
        let f2 = F2::builder().alpha(alpha).split_factor(2).seed(9).build().unwrap();
        let f2_outcome = f2.encrypt(&plain).unwrap();
        let mas = f2_outcome.f2_state().unwrap().mas_sets[0];
        let exp = AttackExperiment::for_scheme(&plain, &f2, &f2_outcome, mas).unwrap();
        let f2_rate = exp.run(&FrequencyAttacker, 600, 2).success_rate();
        assert!(f2_rate <= alpha + 0.12, "rate = {f2_rate}");
        assert!(f2_rate < det_rate);
    }

    #[test]
    fn empty_experiment() {
        let plain = Table::empty(Schema::from_names(["A"]).unwrap());
        let enc = deterministic_encrypt(&plain);
        let exp = AttackExperiment::for_row_aligned(&plain, &enc, AttrSet::all(1));
        let outcome = exp.run(&FrequencyAttacker, 10, 3);
        assert_eq!(outcome.trials, 0);
        assert_eq!(outcome.success_rate(), 0.0);
    }
}
