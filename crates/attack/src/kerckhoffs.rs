//! The Kerckhoffs adversary of §4.2.
//!
//! This adversary knows the F² algorithm (but neither the key nor the owner's α and ϖ)
//! and runs the paper's four-step procedure:
//!
//! 1. **Estimate the split factor**: `ϖ' = f^E_max / f^P_max`, the ratio of the maximum
//!    ciphertext frequency to the maximum plaintext frequency.
//! 2. **Find the ECGs**: bucket ciphertext combinations by their (homogenised)
//!    frequency — every bucket corresponds to one equivalence class group.
//! 3. **Match ECGs to candidate plaintexts**: a plaintext `p` is a candidate for a
//!    bucket of frequency `f` if `ϖ'·freq_D(p) ≥ …` — more precisely the paper uses
//!    `f_{D̂}(e) ≥ ϖ·f_D(p)`… inverted, the candidates of `e` are the plaintexts whose
//!    scaled frequency does not exceed the bucket frequency.
//! 4. **Guess**: map the target ciphertext to one of the candidates. We let the
//!    adversary pick the candidate with the highest plaintext frequency (the best
//!    deterministic strategy absent further information); §4.2 shows the success
//!    probability is at most `1/y ≤ α` regardless.

use crate::{Adversary, AdversaryKnowledge};
use f2_relation::Value;

/// The four-step Kerckhoffs adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct KerckhoffsAttacker;

impl KerckhoffsAttacker {
    /// Step 1: estimate the split factor from the two frequency distributions.
    pub fn estimate_split_factor(knowledge: &AdversaryKnowledge) -> f64 {
        let max_plain = knowledge.plaintext_frequencies.values().copied().max().unwrap_or(1);
        let max_cipher =
            knowledge.ciphertext_frequencies.values().copied().max().unwrap_or(max_plain);
        if max_plain == 0 {
            1.0
        } else {
            (max_cipher as f64 / max_plain as f64).max(f64::MIN_POSITIVE)
        }
    }

    /// Step 3: the candidate plaintext combinations for a ciphertext of frequency `f`.
    pub fn candidates(
        knowledge: &AdversaryKnowledge,
        ciphertext_frequency: usize,
        split_estimate: f64,
    ) -> Vec<(Vec<Value>, usize)> {
        knowledge
            .plaintext_frequencies
            .iter()
            .filter(|(_, &fp)| split_estimate * fp as f64 >= ciphertext_frequency as f64 * 0.999)
            .map(|(p, &f)| (p.clone(), f))
            .collect()
    }
}

impl Adversary for KerckhoffsAttacker {
    fn guess(
        &self,
        knowledge: &AdversaryKnowledge,
        _ciphertext: &[Value],
        ciphertext_frequency: usize,
    ) -> Option<Vec<Value>> {
        let split = Self::estimate_split_factor(knowledge);
        let mut candidates = Self::candidates(knowledge, ciphertext_frequency, split);
        if candidates.is_empty() {
            // Fall back to the full plaintext set (the true plaintext is always a
            // possible mapping).
            candidates =
                knowledge.plaintext_frequencies.iter().map(|(p, &f)| (p.clone(), f)).collect();
        }
        candidates
            .into_iter()
            .max_by(|(pa, fa), (pb, fb)| fa.cmp(fb).then_with(|| pa.cmp(pb)))
            .map(|(p, _)| p)
    }

    fn name(&self) -> &'static str {
        "kerckhoffs-4-step"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knowledge(plain: &[(&str, usize)], cipher_freqs: &[usize]) -> AdversaryKnowledge {
        AdversaryKnowledge {
            plaintext_frequencies: plain.iter().map(|(v, f)| (vec![Value::text(*v)], *f)).collect(),
            ciphertext_frequencies: cipher_freqs
                .iter()
                .enumerate()
                .map(|(i, f)| (vec![Value::Int(i as i64)], *f))
                .collect(),
        }
    }

    #[test]
    fn split_factor_estimation() {
        // Max plaintext frequency 8, max ciphertext frequency 4 → ϖ' = 0.5 (split 2).
        let k = knowledge(&[("a", 8), ("b", 2)], &[4, 4, 2]);
        let est = KerckhoffsAttacker::estimate_split_factor(&k);
        assert!((est - 0.5).abs() < 1e-9);
        // No ciphertext knowledge → neutral estimate 1.
        let k2 = knowledge(&[("a", 5)], &[]);
        assert!((KerckhoffsAttacker::estimate_split_factor(&k2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn candidate_filtering() {
        let k = knowledge(&[("a", 8), ("b", 4), ("c", 1)], &[4, 4, 4]);
        // ϖ' = 4/8 = 0.5; a bucket of frequency 4 admits plaintexts with 0.5·f ≥ 4,
        // i.e. f ≥ 8 → only "a".
        let cands = KerckhoffsAttacker::candidates(&k, 4, 0.5);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].0, vec![Value::text("a")]);
        // A bucket of frequency 1 admits everything with 0.5·f ≥ 1 (a and b).
        let cands = KerckhoffsAttacker::candidates(&k, 1, 0.5);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn guess_returns_some_plaintext() {
        let k = knowledge(&[("a", 8), ("b", 4), ("c", 1)], &[4, 4, 4, 2]);
        let attacker = KerckhoffsAttacker;
        let g = attacker.guess(&k, &[Value::Int(0)], 4).unwrap();
        assert_eq!(g, vec![Value::text("a")]);
        assert_eq!(attacker.name(), "kerckhoffs-4-step");
    }
}
