//! Cross-chunk frequency leakage: α-security *within* chunks vs *across* them.
//!
//! The streaming engine shards a table into row-range chunks and runs F²
//! independently per chunk, so ciphertext frequencies are flattened **per chunk**,
//! not table-wide — the boundary-leakage question recorded in ROADMAP.md since the
//! engine landed. This module turns it into an experiment with two scopes:
//!
//! * the **within-chunk** game restricts the adversary to one chunk at a time —
//!   background knowledge (plaintext and ciphertext frequency histograms) and the
//!   challenge are both chunk-local. This is the scope the per-chunk F² run
//!   directly defends, and its success rate should respect α.
//! * the **cross-chunk** game is the ordinary table-wide experiment played against
//!   the *merged* outcome: the adversary sees the full concatenated ciphertext and
//!   the full plaintext distribution. Any excess of this rate over the within-chunk
//!   rate ([`CrossChunkOutcome::boundary_leakage`]) is leakage attributable purely
//!   to chunking.
//!
//! **What the measurement shows.** For *single-challenge* frequency analysis, the
//! per-chunk guarantee composes: every output row's chunk is public (row position),
//! and inside that chunk the flattening leaves ≥ ⌈1/α⌉ equally-frequent candidate
//! groups, so a frequency-matching adversary stays at or below α in both scopes —
//! the cross-chunk rate is typically *lower*, because chunk-flattened ciphertext
//! frequencies match the table-wide plaintext histogram even less. The residual
//! cross-boundary risk is **instance linkage**: an adversary who can cluster the
//! per-chunk instances of one value (via auxiliary information — timing, updates,
//! co-occurrence) reconstructs table-wide frequencies that per-chunk flattening no
//! longer hides. Linkage adversaries are outside the `Exp^freq` game this harness
//! plays and remain future work; the experiment reports both scopes so a positive
//! `boundary_leakage` would surface immediately.
//!
//! Both games reuse the [`AttackExperiment`] machinery, so every adversary
//! ([`crate::FrequencyAttacker`], [`crate::KerckhoffsAttacker`]) runs unchanged in
//! either scope. The experiment is engine-agnostic: it takes the chunk row ranges
//! as plain data (`f2_engine::ChunkRecord` provides them), not engine types.

use crate::{Adversary, AttackExperiment, AttackOutcome};
use f2_core::{F2Error, Scheme, SchemeOutcome};
use f2_relation::{AttrSet, Table};
use std::ops::Range;

/// The within-chunk and cross-chunk games over one chunk-merged encrypted outcome.
#[derive(Debug, Clone)]
pub struct CrossChunkExperiment {
    /// The attribute set the games are played over (typically a MAS).
    pub attrs: AttrSet,
    table_wide: AttackExperiment,
    per_chunk: Vec<AttackExperiment>,
}

/// Result of one [`CrossChunkExperiment::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossChunkOutcome {
    /// The adversary restricted to chunk-local knowledge and challenges.
    pub within_chunk: AttackOutcome,
    /// The adversary with table-wide knowledge over the merged ciphertext.
    pub cross_chunk: AttackOutcome,
}

impl CrossChunkOutcome {
    /// Success-rate excess of the cross-chunk game over the within-chunk one — the
    /// leakage attributable to chunk boundaries (≤ 0 means none measured).
    pub fn boundary_leakage(&self) -> f64 {
        self.cross_chunk.success_rate() - self.within_chunk.success_rate()
    }
}

impl CrossChunkExperiment {
    /// Build both games from a chunk-merged outcome.
    ///
    /// `chunk_rows` / `chunk_output_rows` are the per-chunk plaintext and
    /// encrypted-output row ranges, in chunk order — exactly the `rows` and
    /// `output_rows` fields of the engine's `ChunkRecord`s. Errors if the outcome
    /// does not belong to `scheme` or the ranges do not tile the tables.
    pub fn new(
        plain: &Table,
        scheme: &dyn Scheme,
        outcome: &SchemeOutcome,
        chunk_rows: &[Range<usize>],
        chunk_output_rows: &[Range<usize>],
        attrs: AttrSet,
    ) -> Result<Self, F2Error> {
        if chunk_rows.len() != chunk_output_rows.len() {
            return Err(F2Error::UnsupportedInput(
                "chunk plaintext and output range lists differ in length".into(),
            ));
        }
        let table_wide = AttackExperiment::for_scheme(plain, scheme, outcome, attrs)?;
        let mapping = scheme.real_rows(outcome)?;
        let mut per_chunk = Vec::with_capacity(chunk_rows.len());
        for (rows, output_rows) in chunk_rows.iter().zip(chunk_output_rows) {
            let bad_range = |what: &str, range: &Range<usize>, len: usize| {
                F2Error::ProvenanceMismatch(format!(
                    "chunk {what} range {range:?} does not fit the {len}-row table"
                ))
            };
            if rows.start > rows.end || rows.end > plain.row_count() {
                return Err(bad_range("plaintext", rows, plain.row_count()));
            }
            if output_rows.start > output_rows.end
                || output_rows.end > outcome.encrypted.row_count()
            {
                return Err(bad_range("output", output_rows, outcome.encrypted.row_count()));
            }
            // Chunk-local tables: the adversary's whole world is one chunk.
            let chunk_plain = plain.view(rows.clone())?.to_table();
            let chunk_cipher = outcome.encrypted.view(output_rows.clone())?.to_table();
            // Chunk-local ground truth: the scheme's real-row pairs that land in
            // this chunk's output range, shifted to chunk-local coordinates.
            let mut ground_truth = Vec::new();
            for &(out_row, orig_row) in &mapping {
                if !output_rows.contains(&out_row) {
                    continue;
                }
                if !rows.contains(&orig_row) {
                    return Err(F2Error::ProvenanceMismatch(format!(
                        "output row {out_row} of chunk {output_rows:?} maps to original row \
                         {orig_row} outside the chunk's plaintext range {rows:?}"
                    )));
                }
                let cipher = chunk_cipher
                    .row(out_row - output_rows.start)
                    .expect("range checked")
                    .project(attrs);
                let plain_combo =
                    chunk_plain.row(orig_row - rows.start).expect("range checked").project(attrs);
                ground_truth.push((cipher, plain_combo));
            }
            per_chunk.push(AttackExperiment::from_parts(
                &chunk_plain,
                &chunk_cipher,
                attrs,
                ground_truth,
            ));
        }
        Ok(CrossChunkExperiment { attrs, table_wide, per_chunk })
    }

    /// Chunks the experiment covers.
    pub fn chunk_count(&self) -> usize {
        self.per_chunk.len()
    }

    /// Play both games with the given adversary: `trials` rounds of the cross-chunk
    /// game, and `trials` rounds of the within-chunk game distributed over the
    /// chunks proportionally to their ground-truth sizes (so the two scopes sample
    /// the same challenge distribution).
    pub fn run(&self, adversary: &dyn Adversary, trials: usize, seed: u64) -> CrossChunkOutcome {
        let cross_chunk = self.table_wide.run(adversary, trials, seed);
        let total_truth: usize =
            self.per_chunk.iter().map(AttackExperiment::ground_truth_len).sum();
        let mut within = AttackOutcome { trials: 0, successes: 0 };
        for (i, chunk) in self.per_chunk.iter().enumerate() {
            if total_truth == 0 {
                break;
            }
            let share = (trials * chunk.ground_truth_len()).div_ceil(total_truth);
            let outcome = chunk.run(adversary, share, seed.wrapping_add(i as u64 + 1));
            within.trials += outcome.trials;
            within.successes += outcome.successes;
        }
        CrossChunkOutcome { within_chunk: within, cross_chunk }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyAttacker;
    use f2_core::{ChunkState, ChunkedScheme, F2Scheme, F2};
    use f2_relation::{Record, Schema, Value};

    /// A table whose dominant value recurs in every chunk: chunk-local flattening
    /// cannot hide its table-wide popularity.
    fn recurring_table(rows_per_value: usize) -> Table {
        let schema = Schema::from_names(["A", "B"]).unwrap();
        let mut rows = Vec::new();
        for block in 0..4 {
            for _ in 0..rows_per_value {
                rows.push(Record::new(vec![Value::text("hot"), Value::text("hot-b")]));
            }
            rows.push(Record::new(vec![
                Value::text(format!("cold{block}")),
                Value::text(format!("cold{block}-b")),
            ]));
        }
        Table::new(schema, rows).unwrap()
    }

    /// Encrypt `plain` in fixed-size chunks through the scheme's own chunk API (no
    /// engine dependency), returning the merged outcome plus both range lists.
    fn chunked_outcome(
        scheme: &F2Scheme,
        plain: &Table,
        chunk_rows: usize,
    ) -> (SchemeOutcome, Vec<Range<usize>>, Vec<Range<usize>>) {
        let mut chunk_states = Vec::new();
        let mut plain_ranges = Vec::new();
        let mut output_ranges = Vec::new();
        let mut encrypted: Option<Table> = None;
        let mut report = None;
        for (index, start) in (0..plain.row_count()).step_by(chunk_rows).enumerate() {
            let range = start..(start + chunk_rows).min(plain.row_count());
            let view = plain.view(range.clone()).unwrap();
            let outcome = scheme.reseeded(index as u64 + 99).encrypt_view(&view).unwrap();
            let output_start = encrypted.as_ref().map_or(0, Table::row_count);
            chunk_states.push(ChunkState {
                row_offset: range.start,
                output_offset: output_start,
                state: outcome.state,
            });
            match &mut encrypted {
                None => encrypted = Some(outcome.encrypted),
                Some(t) => t.append(outcome.encrypted).unwrap(),
            }
            output_ranges.push(output_start..encrypted.as_ref().unwrap().row_count());
            plain_ranges.push(range);
            report.get_or_insert(outcome.report);
        }
        let encrypted = encrypted.unwrap();
        let state = scheme.merge_chunk_states(chunk_states).unwrap();
        let outcome = SchemeOutcome { encrypted, state, report: report.unwrap() };
        (outcome, plain_ranges, output_ranges)
    }

    #[test]
    fn alpha_holds_in_both_scopes_for_frequency_matching() {
        let plain = recurring_table(6);
        let scheme = F2::builder().alpha(0.34).split_factor(2).seed(17).build().unwrap();
        let (outcome, plain_ranges, output_ranges) = chunked_outcome(&scheme, &plain, 7);
        let mas = AttrSet::from_indices([0, 1]);
        let exp = CrossChunkExperiment::new(
            &plain,
            &scheme,
            &outcome,
            &plain_ranges,
            &output_ranges,
            mas,
        )
        .unwrap();
        assert_eq!(exp.chunk_count(), plain_ranges.len());
        let run = exp.run(&FrequencyAttacker, 1200, 5);
        // Within a chunk the per-chunk F² run flattened frequencies: α (+ slack).
        assert!(
            run.within_chunk.success_rate() <= 0.34 + 0.15,
            "within-chunk rate {} broke alpha",
            run.within_chunk.success_rate()
        );
        // Per-chunk α-security composes for single-challenge frequency matching
        // (see the module docs): the merged table stays at/below α too.
        assert!(
            run.cross_chunk.success_rate() <= 0.34 + 0.15,
            "cross-chunk rate {} broke alpha",
            run.cross_chunk.success_rate()
        );
        // In fact chunk-flattened frequencies match the table-wide histogram even
        // less, so this adversary gains nothing from crossing chunk boundaries.
        assert!(
            run.boundary_leakage() <= 0.1,
            "unexpected boundary leakage: {} vs {}",
            run.cross_chunk.success_rate(),
            run.within_chunk.success_rate()
        );
    }

    #[test]
    fn whole_table_as_one_chunk_shows_no_boundary_leakage() {
        let plain = recurring_table(5);
        let scheme = F2::builder().alpha(0.34).split_factor(2).seed(23).build().unwrap();
        let (outcome, plain_ranges, output_ranges) =
            chunked_outcome(&scheme, &plain, plain.row_count());
        let exp = CrossChunkExperiment::new(
            &plain,
            &scheme,
            &outcome,
            &plain_ranges,
            &output_ranges,
            AttrSet::from_indices([0, 1]),
        )
        .unwrap();
        assert_eq!(exp.chunk_count(), 1);
        let run = exp.run(&FrequencyAttacker, 800, 6);
        // One chunk = the paper's table-wide guarantee; both scopes coincide.
        assert!(run.cross_chunk.success_rate() <= 0.34 + 0.15);
        assert!(run.boundary_leakage().abs() <= 0.1);
    }

    #[test]
    fn mismatched_ranges_are_rejected() {
        let plain = recurring_table(3);
        let scheme = F2::builder().alpha(0.5).seed(2).build().unwrap();
        let (outcome, plain_ranges, output_ranges) = chunked_outcome(&scheme, &plain, 5);
        let attrs = AttrSet::from_indices([0, 1]);
        // Length mismatch.
        assert!(CrossChunkExperiment::new(
            &plain,
            &scheme,
            &outcome,
            &plain_ranges[1..],
            &output_ranges,
            attrs
        )
        .is_err());
        // Out-of-bounds output range.
        let mut bad = output_ranges.clone();
        bad.last_mut().unwrap().end += 10;
        assert!(CrossChunkExperiment::new(&plain, &scheme, &outcome, &plain_ranges, &bad, attrs)
            .is_err());
        // Plaintext range that does not cover its chunk's real rows.
        let mut bad = plain_ranges.clone();
        bad[0] = 1..2;
        assert!(CrossChunkExperiment::new(&plain, &scheme, &outcome, &bad, &output_ranges, attrs)
            .is_err());
    }
}
