//! The classic frequency-matching adversary.
//!
//! Against a deterministic encryption scheme the ciphertext frequency of a value equals
//! its plaintext frequency, so the adversary simply returns the plaintext combination
//! whose frequency is closest to the observed ciphertext frequency (ties broken towards
//! the most frequent candidate, which maximises the success probability). This is the
//! attack that breaks the naive scheme of Figure 1(b).

use crate::{Adversary, AdversaryKnowledge};
use f2_relation::Value;

/// Frequency-matching adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrequencyAttacker;

impl Adversary for FrequencyAttacker {
    fn guess(
        &self,
        knowledge: &AdversaryKnowledge,
        _ciphertext: &[Value],
        ciphertext_frequency: usize,
    ) -> Option<Vec<Value>> {
        knowledge
            .plaintext_frequencies
            .iter()
            .min_by_key(|(p, &f)| {
                let dist = f.abs_diff(ciphertext_frequency);
                // Prefer the closest frequency; among equally close candidates prefer
                // the most frequent one, then a deterministic value order.
                (dist, usize::MAX - f, (*p).clone())
            })
            .map(|(p, _)| p.clone())
    }

    fn name(&self) -> &'static str {
        "frequency-matching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn knowledge(plain: &[(&str, usize)]) -> AdversaryKnowledge {
        AdversaryKnowledge {
            plaintext_frequencies: plain.iter().map(|(v, f)| (vec![Value::text(*v)], *f)).collect(),
            ciphertext_frequencies: HashMap::new(),
        }
    }

    #[test]
    fn exact_frequency_match_wins() {
        let k = knowledge(&[("a", 10), ("b", 4), ("c", 1)]);
        let attacker = FrequencyAttacker;
        assert_eq!(attacker.guess(&k, &[Value::bytes(vec![1])], 4), Some(vec![Value::text("b")]));
        assert_eq!(attacker.guess(&k, &[Value::bytes(vec![2])], 10), Some(vec![Value::text("a")]));
    }

    #[test]
    fn closest_frequency_is_chosen() {
        let k = knowledge(&[("a", 10), ("b", 4)]);
        let attacker = FrequencyAttacker;
        assert_eq!(attacker.guess(&k, &[Value::bytes(vec![1])], 9), Some(vec![Value::text("a")]));
    }

    #[test]
    fn empty_knowledge_concedes() {
        let attacker = FrequencyAttacker;
        assert_eq!(
            attacker.guess(&AdversaryKnowledge::default(), &[Value::bytes(vec![1])], 3),
            None
        );
        assert_eq!(attacker.name(), "frequency-matching");
    }
}
