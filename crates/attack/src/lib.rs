//! # f2-attack — the frequency-analysis adversary and the α-security experiment
//!
//! Section 2.4 of the paper defines the frequency analysis attack as a game
//! `Exp^freq_{A,Π}`: the adversary is given one ciphertext value `e`, its frequency in
//! the encrypted data, and the full frequency distribution of the plaintext data, and
//! must output the plaintext hidden by `e`. A scheme is **α-secure** if no adversary
//! wins with probability above α (Definition 2.1). Section 4 additionally analyses the
//! attack *under Kerckhoffs's principle*: the adversary also knows every detail of the
//! F² algorithm (but not the key) and runs a four-step procedure — estimate the split
//! factor, bucket ciphertexts into ECGs by frequency, match ECGs to candidate plaintext
//! values, and finally guess a mapping.
//!
//! This crate implements both adversaries and an empirical harness that plays the game
//! many times against a real encrypted table:
//!
//! * [`FrequencyAttacker`] — the classic frequency-matching adversary, which breaks
//!   deterministic encryption (the paper's Figure 1(b) discussion);
//! * [`KerckhoffsAttacker`] — the four-step procedure of §4.2;
//! * [`experiment`] — ground-truth construction and success-rate measurement, used by
//!   the `security` section of the benchmark report and by integration tests that check
//!   the measured success rate never exceeds α.
//!
//! The experiment is backend-agnostic: [`AttackExperiment::for_scheme`] builds the
//! game for **any** [`f2_core::Scheme`] from the scheme's own output-row ↔ source-row
//! mapping, so the same harness attacks F², the deterministic AES baseline, and the
//! probabilistic ciphers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cross_chunk;
pub mod experiment;
pub mod freq;
pub mod kerckhoffs;

pub use cross_chunk::{CrossChunkExperiment, CrossChunkOutcome};
pub use experiment::{AttackExperiment, AttackOutcome};
pub use freq::FrequencyAttacker;
pub use kerckhoffs::KerckhoffsAttacker;

use f2_relation::Value;
use std::collections::HashMap;

/// The background knowledge handed to every adversary: the exact frequency of every
/// plaintext value combination in the original data (the paper's conservative
/// assumption), plus the observable frequency of every ciphertext combination.
#[derive(Debug, Clone, Default)]
pub struct AdversaryKnowledge {
    /// `freq(P)`: plaintext combination → number of occurrences in `D`.
    pub plaintext_frequencies: HashMap<Vec<Value>, usize>,
    /// Observable ciphertext combination → number of occurrences in `D̂`.
    pub ciphertext_frequencies: HashMap<Vec<Value>, usize>,
}

/// An adversary playing `Exp^freq`: given one ciphertext combination and its frequency,
/// output a guess for the hidden plaintext combination.
pub trait Adversary {
    /// Produce the guess. Returning `None` concedes the round.
    fn guess(
        &self,
        knowledge: &AdversaryKnowledge,
        ciphertext: &[Value],
        ciphertext_frequency: usize,
    ) -> Option<Vec<Value>>;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knowledge_default_is_empty() {
        let k = AdversaryKnowledge::default();
        assert!(k.plaintext_frequencies.is_empty());
        assert!(k.ciphertext_frequencies.is_empty());
    }
}
