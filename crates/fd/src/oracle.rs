//! Exhaustive reference implementations ("oracles").
//!
//! These are deliberately naive — exponential enumeration with direct definition
//! checks — and exist solely so that the efficient algorithms ([`crate::tane`],
//! [`crate::mas`]) can be validated against ground truth on small relations by unit
//! and property tests.

use crate::fdep::{Fd, FdSet};
use f2_relation::{AttrSet, Partition, Table};

/// Enumerate every non-trivial *minimal* FD of the table by brute force.
///
/// Complexity is `O(m · 2^m · n)` for `m` attributes — only usable on small schemas.
pub fn brute_force_fds(table: &Table) -> FdSet {
    let arity = table.arity();
    let mut result = FdSet::new();
    if table.row_count() == 0 {
        return result;
    }
    for rhs in 0..arity {
        let pool = table.schema().all_attrs().without(rhs);
        // Enumerate candidate LHS by increasing size so minimality is easy to enforce.
        let mut holding: Vec<AttrSet> = Vec::new();
        for size in 0..=pool.len() {
            for lhs in crate::lattice::subsets_of_size(pool, size) {
                if holding.iter().any(|h| h.is_subset_of(lhs)) {
                    continue; // implied by a smaller FD — not minimal
                }
                if fd_holds_by_definition(table, lhs, rhs) {
                    holding.push(lhs);
                    result.insert(Fd::new(lhs, rhs));
                }
            }
        }
    }
    result
}

/// Check `X → A` directly from Definition 2.2: every pair of rows agreeing on `X`
/// agrees on `A`.
pub fn fd_holds_by_definition(table: &Table, lhs: AttrSet, rhs: usize) -> bool {
    if lhs.is_empty() {
        // ∅ → A holds iff A is constant.
        return table.distinct_count(rhs) <= 1;
    }
    let partition = Partition::compute(table, lhs);
    for class in partition.classes() {
        if class.size() < 2 {
            continue;
        }
        let first = table.row(class.rows[0]).expect("row exists").get(rhs).cloned();
        for &r in &class.rows[1..] {
            if table.row(r).expect("row exists").get(rhs).cloned() != first {
                return false;
            }
        }
    }
    true
}

/// Enumerate every MAS of the table by brute force (check every attribute subset).
pub fn brute_force_mas(table: &Table) -> Vec<AttrSet> {
    let arity = table.arity();
    assert!(arity <= 20, "brute-force MAS oracle is limited to 20 attributes");
    let mut non_unique: Vec<AttrSet> = Vec::new();
    for bits in 1u64..(1u64 << arity) {
        let set = AttrSet::from_indices((0..arity).filter(|&a| (bits >> a) & 1 == 1));
        if Partition::compute(table, set).has_duplicates() {
            non_unique.push(set);
        }
    }
    let mut maximal: Vec<AttrSet> = Vec::new();
    for &s in &non_unique {
        if !non_unique.iter().any(|&t| s != t && s.is_subset_of(t)) {
            maximal.push(s);
        }
    }
    maximal.sort_by_key(|s| s.bits());
    maximal
}

/// Compare the FDs of two tables and return (missing, spurious) relative to `expected`:
/// FDs of `expected` not holding in `actual`, and FDs of `actual` not holding in
/// `expected`. Both tables are brute-forced, so keep them small.
pub fn fd_delta(expected: &Table, actual: &Table) -> (Vec<Fd>, Vec<Fd>) {
    let e = brute_force_fds(expected);
    let a = brute_force_fds(actual);
    (e.difference(&a), a.difference(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mas::find_mas;
    use f2_relation::table;
    use proptest::prelude::*;

    #[test]
    fn definition_check() {
        let t = table! {
            ["A", "B"];
            ["1", "x"],
            ["1", "x"],
            ["2", "y"],
        };
        assert!(fd_holds_by_definition(&t, AttrSet::single(0), 1));
        assert!(fd_holds_by_definition(&t, AttrSet::single(1), 0));
        assert!(!fd_holds_by_definition(&t, AttrSet::EMPTY, 0));
        let t2 = table! { ["A", "B"]; ["1", "x"], ["1", "y"] };
        assert!(!fd_holds_by_definition(&t2, AttrSet::single(0), 1));
        assert!(fd_holds_by_definition(&t2, AttrSet::EMPTY, 0));
    }

    #[test]
    fn brute_force_minimality() {
        let t = table! {
            ["A", "B", "C"];
            ["1", "x", "p"],
            ["1", "x", "q"],
            ["2", "y", "p"],
        };
        let fds = brute_force_fds(&t);
        // A → B is minimal; {A,C} → B must not be reported (non-minimal).
        assert!(fds.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(!fds.contains(&Fd::new(AttrSet::from_indices([0, 2]), 1)));
    }

    #[test]
    fn oracle_mas_on_figure3() {
        let t = table! {
            ["A", "B", "C"];
            ["a3", "b2", "c1"],
            ["a1", "b2", "c1"],
            ["a2", "b2", "c1"],
            ["a2", "b2", "c2"],
            ["a3", "b2", "c2"],
            ["a1", "b1", "c3"],
        };
        let oracle = brute_force_mas(&t);
        assert_eq!(oracle.len(), 2);
        assert_eq!(oracle, find_mas(&t).sets);
    }

    #[test]
    fn fd_delta_identical_tables() {
        let t = table! { ["A", "B"]; ["1", "x"], ["1", "x"], ["2", "y"] };
        let (missing, spurious) = fd_delta(&t, &t);
        assert!(missing.is_empty());
        assert!(spurious.is_empty());
    }

    /// Strategy: small random tables with up to 5 attributes, 12 rows, values from a
    /// domain of 3 — small enough for the oracle, rich enough to exercise edge cases.
    fn small_table_strategy() -> impl Strategy<Value = Table> {
        (2usize..=5, 1usize..=12).prop_flat_map(|(arity, rows)| {
            proptest::collection::vec(proptest::collection::vec(0u8..3, arity), rows..=rows)
                .prop_map(move |rowvals| {
                    let names: Vec<String> = (0..arity).map(|i| format!("A{i}")).collect();
                    let schema = f2_relation::Schema::from_names(names).unwrap();
                    let records = rowvals
                        .into_iter()
                        .map(|r| {
                            f2_relation::Record::new(
                                r.into_iter().map(|v| f2_relation::Value::Int(v as i64)).collect(),
                            )
                        })
                        .collect();
                    Table::new(schema, records).unwrap()
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mas_finder_matches_oracle(t in small_table_strategy()) {
            let fast = find_mas(&t).sets;
            let oracle = brute_force_mas(&t);
            prop_assert_eq!(fast, oracle);
        }

        #[test]
        fn tane_matches_oracle(t in small_table_strategy()) {
            let tane = crate::tane::discover_fds(&t);
            let oracle = brute_force_fds(&t);
            prop_assert_eq!(tane, oracle);
        }

        #[test]
        fn every_fd_is_inside_some_mas(t in small_table_strategy()) {
            // The paper's key observation (§3.1): for each FD F there is a MAS M with
            // LHS(F) ∪ RHS(F) ⊆ M — provided the FD's attribute closure is non-unique.
            // Minimal non-trivial FDs with a non-constant RHS satisfy this.
            let mas = find_mas(&t).sets;
            let fds = brute_force_fds(&t);
            for fd in fds.iter() {
                if fd.lhs.is_empty() {
                    continue; // constant attributes need not lie in a MAS
                }
                let span = fd.lhs.with(fd.rhs);
                let non_unique = Partition::compute(&t, span).has_duplicates();
                if non_unique {
                    prop_assert!(
                        mas.iter().any(|m| span.is_subset_of(*m)),
                        "FD {} not covered by any MAS", fd
                    );
                }
            }
        }
    }
}
