//! # f2-fd — functional-dependency and maximal-attribute-set discovery
//!
//! lint: planning — crate-wide: no new `thread_local!` caches (`f2-lint` rule
//! `thread-local`); discovery state must stay plan-scoped and explicit.
//!
//! The F² pipeline (Dong & Wang, ICDE 2017) needs two discovery substrates:
//!
//! * **MAS discovery** (Step 1, §3.1): find every *maximal attribute set* — a maximal
//!   attribute combination whose projection still contains duplicates (equivalently, a
//!   maximal non-unique column combination in the sense of Heise et al.'s DUCC). The
//!   data owner runs this before encrypting; its cost is what makes F² cheaper than
//!   discovering the FDs locally. Implemented in [`mas`] with a GenMax-style
//!   depth-first search with subsumption pruning ([`mas::MasFinder`]), validated
//!   against a brute-force oracle.
//! * **FD discovery** (the server side, §5.4): the paper uses TANE (Huhtala et al.) to
//!   discover FDs both on the plaintext table and on the encrypted table, and reports
//!   the overhead of the latter (Figure 10). Implemented in [`tane`].
//!
//! The [`lattice`] module implements the FD lattice of §3.4 that Step 4 of F² walks to
//! eliminate false-positive FDs, and [`oracle`] contains exhaustive reference
//! implementations used by the property-test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fdep;
pub mod lattice;
pub mod mas;
pub mod oracle;
pub mod tane;

pub use fdep::{Fd, FdSet};
pub use lattice::FdLattice;
pub use mas::{MasFinder, MasSet};
pub use tane::{Tane, TaneConfig};
