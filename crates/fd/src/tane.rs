//! TANE — level-wise discovery of minimal functional dependencies
//! (Huhtala, Kärkkäinen, Porkka, Toivonen, *The Computer Journal* 1999).
//!
//! The paper uses TANE in two places: to quantify how much more expensive local FD
//! discovery is than F² encryption (§5.4, "TANE takes 1,736 seconds … while F² only
//! takes 2 seconds"), and to measure the FD-discovery overhead on the encrypted table
//! (Figure 10). The implementation here is the classic algorithm:
//!
//! * stripped partitions with linear-time products,
//! * the `e(X)` error measure for the validity test `X\{A} → A` ⟺ `e(X\{A}) = e(X)`,
//! * right-hand-side candidate sets `C⁺(X)` with the standard pruning rules, including
//!   key pruning.
//!
//! The output is the set of *minimal*, non-trivial FDs, which is what the server would
//! report back to the data owner in the outsourcing workflow.
//!
//! The level-wise search is the standard TANE linearisation over **incrementally
//! refined stripped partitions**: level-1 partitions come straight from the table's
//! interned columnar index, and every level-(ℓ+1) partition is derived by a
//! stripped-partition product of two level-ℓ partitions through one reusable
//! [`ProductScratch`] — the table itself is never rehashed after level 1. The
//! previous level's partitions (needed by the `e(X\{A}) = e(X)` validity test) are
//! owned by the traversal and *moved* (not cloned) as the level rolls forward.

use crate::fdep::{Fd, FdSet};
use f2_relation::{AttrSet, ProductScratch, StrippedPartition, Table};
use std::collections::HashMap;

/// Configuration for a TANE run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaneConfig {
    /// Upper bound on the size of the left-hand side to explore. `None` explores the
    /// full lattice (exact result). Benchmarks on wide tables may cap this to keep the
    /// level-wise search tractable; the cap is applied identically to the plaintext and
    /// the encrypted table so overhead ratios remain meaningful.
    pub max_lhs_size: Option<usize>,
}

/// The TANE FD-discovery algorithm.
#[derive(Debug, Clone, Default)]
pub struct Tane {
    config: TaneConfig,
}

#[derive(Debug, Clone)]
struct Node {
    partition: StrippedPartition,
    /// C⁺(X): right-hand-side candidates.
    cplus: AttrSet,
}

impl Tane {
    /// TANE with default configuration (exact, unbounded LHS size).
    pub fn new() -> Self {
        Tane { config: TaneConfig::default() }
    }

    /// TANE with an explicit configuration.
    pub fn with_config(config: TaneConfig) -> Self {
        Tane { config }
    }

    /// Discover all minimal, non-trivial FDs of the table.
    pub fn discover(&self, table: &Table) -> FdSet {
        let arity = table.arity();
        let universe = table.schema().all_attrs();
        let mut results = FdSet::new();
        if arity == 0 || table.row_count() == 0 {
            return results;
        }

        // Level 1: single attributes, straight from the interned columnar index.
        let mut level: HashMap<AttrSet, Node> = HashMap::new();
        let mut prev_cplus: HashMap<AttrSet, AttrSet> = HashMap::new();
        // C+(∅) = R.
        prev_cplus.insert(AttrSet::EMPTY, universe);
        for a in 0..arity {
            level.insert(
                AttrSet::single(a),
                Node { partition: StrippedPartition::for_attribute(table, a), cplus: universe },
            );
        }
        // Partitions of the previous level, owned by this traversal (they back the
        // `e(X\{A}) = e(X)` validity test); plus one scratch for every product.
        let mut prev_partitions: HashMap<AttrSet, StrippedPartition> = HashMap::new();
        let mut scratch = ProductScratch::new();

        let mut size = 1usize;
        while !level.is_empty() {
            // 1. Compute C+(X) = ∩_{A ∈ X} C+(X \ {A}) using the previous level.
            //    (For level 1 this is C+(∅) = R, already seeded above.)
            if size > 1 {
                for (x, node) in level.iter_mut() {
                    let mut c = universe;
                    for a in x.iter() {
                        let sub = x.without(a);
                        let sub_c = prev_cplus.get(&sub).copied().unwrap_or(AttrSet::EMPTY);
                        c = c.intersect(sub_c);
                    }
                    node.cplus = c;
                }
            }

            // 2. Compute dependencies.
            let keys: Vec<AttrSet> = level.keys().copied().collect();
            for x in &keys {
                let candidates = x.intersect(level[x].cplus);
                for a in candidates.iter() {
                    let lhs = x.without(a);
                    let valid = if lhs.is_empty() {
                        // ∅ → A holds iff A is constant (one distinct value). With a
                        // stripped partition that means a single class covering every
                        // row; tables with at most one row are trivially constant.
                        let pa = &level[&AttrSet::single(a)].partition;
                        table.row_count() <= 1
                            || (pa.class_count() == 1 && pa.element_count() == table.row_count())
                    } else {
                        let e_lhs = if size == 1 {
                            // lhs is empty, handled above; unreachable here.
                            unreachable!()
                        } else {
                            prev_excess(&prev_partitions, &lhs, table)
                        };
                        let e_x = level[x].partition.stripped_excess();
                        e_lhs == e_x
                    };
                    if valid {
                        results.insert(Fd::new(lhs, a));
                        let node = level.get_mut(x).expect("node exists");
                        node.cplus.remove(a);
                        // Remove all B ∈ R \ X from C+(X).
                        for b in universe.difference(*x).iter() {
                            node.cplus.remove(b);
                        }
                    }
                }
            }

            // 3. Prune.
            let mut next_candidates: Vec<AttrSet> = Vec::new();
            let mut current_cplus: HashMap<AttrSet, AttrSet> = HashMap::new();
            for (x, node) in &level {
                current_cplus.insert(*x, node.cplus);
            }
            let mut surviving: Vec<AttrSet> = Vec::new();
            for x in &keys {
                let node = &level[x];
                if node.cplus.is_empty() {
                    continue;
                }
                let is_key = node.partition.stripped_excess() == 0;
                if is_key {
                    // Key pruning: output X → A for candidates that survive the
                    // intersection rule, then delete X from the level.
                    for a in node.cplus.difference(*x).iter() {
                        let mut in_all = true;
                        for b in x.iter() {
                            let y = x.with(a).without(b);
                            // Y may not have been materialised at this level (a subset
                            // was pruned earlier); approximate C⁺(Y) from the previous
                            // level's candidate sets. Over-approximation is safe: any
                            // non-minimal FD it lets through is removed by the final
                            // minimality filter.
                            let yc = current_cplus.get(&y).copied().unwrap_or_else(|| {
                                y.iter()
                                    .map(|b2| {
                                        prev_cplus.get(&y.without(b2)).copied().unwrap_or(universe)
                                    })
                                    .fold(universe, |acc, c| acc.intersect(c))
                            });
                            if !yc.contains(a) {
                                in_all = false;
                                break;
                            }
                        }
                        if in_all {
                            results.insert(Fd::new(*x, a));
                        }
                    }
                    continue;
                }
                surviving.push(*x);
            }
            next_candidates.extend(surviving.iter().copied());

            // 4. Generate the next level by prefix join over surviving nodes.
            if let Some(max) = self.config.max_lhs_size {
                // LHS of FDs found at level `size+1` have size `size`; exploring beyond
                // max+1 attributes per node is unnecessary.
                if size > max {
                    break;
                }
            }
            let mut next_level: HashMap<AttrSet, Node> = HashMap::new();
            next_candidates.sort_by_key(|s| s.bits());
            for i in 0..next_candidates.len() {
                for j in (i + 1)..next_candidates.len() {
                    let a = next_candidates[i];
                    let b = next_candidates[j];
                    let union = a.union(b);
                    if union.len() != size + 1 || next_level.contains_key(&union) {
                        continue;
                    }
                    // All subsets of size `size` must be in the surviving level.
                    let all_subsets_present =
                        union.direct_subsets().all(|s| next_candidates.contains(&s));
                    if !all_subsets_present {
                        continue;
                    }
                    let partition =
                        level[&a].partition.product_with(&level[&b].partition, &mut scratch);
                    next_level.insert(union, Node { partition, cplus: universe });
                }
            }

            // Roll the level forward: the finished level's partitions *move* into the
            // traversal-owned cache backing the next level's error tests.
            prev_cplus = current_cplus;
            prev_partitions.clear();
            prev_partitions.extend(level.into_iter().map(|(x, node)| (x, node.partition)));
            level = next_level;
            size += 1;
        }
        // Final minimality filter: drop any FD whose LHS strictly contains the LHS of
        // another discovered FD with the same RHS.
        let all: Vec<Fd> = results.iter().copied().collect();
        FdSet::from_iter(all.iter().copied().filter(|fd| {
            !all.iter().any(|other| {
                other.rhs == fd.rhs && other.lhs != fd.lhs && other.lhs.is_subset_of(fd.lhs)
            })
        }))
    }
}

/// `e(lhs)` numerator from the previous level's cached partition, or — when the
/// subset was pruned from that level — computed directly off the columnar index.
/// (The cache is owned by the running traversal, so concurrent TANE runs and
/// back-to-back runs on different tables can never observe each other's state.)
fn prev_excess(
    prev_partitions: &HashMap<AttrSet, StrippedPartition>,
    lhs: &AttrSet,
    table: &Table,
) -> usize {
    match prev_partitions.get(lhs) {
        Some(p) => p.stripped_excess(),
        None => StrippedPartition::for_attrs(table, *lhs).stripped_excess(),
    }
}

/// Convenience function: discover all minimal FDs with default configuration.
pub fn discover_fds(table: &Table) -> FdSet {
    Tane::new().discover(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::brute_force_fds;
    use f2_relation::table;

    fn assert_same_fds(t: &Table) {
        let tane = discover_fds(t);
        let oracle = brute_force_fds(t);
        assert_eq!(
            tane,
            oracle,
            "TANE disagrees with oracle on table:\nTANE: {}\nOracle: {}",
            tane.display(t.schema()),
            oracle.display(t.schema())
        );
    }

    #[test]
    fn figure1_table_fd() {
        let t = table! {
            ["A", "B", "C"];
            ["a1", "b1", "c1"],
            ["a1", "b1", "c2"],
            ["a1", "b1", "c3"],
            ["a1", "b1", "c1"],
        };
        let fds = discover_fds(&t);
        // A and B are constants, so ∅ → A and ∅ → B hold (minimal), and C is a key-ish
        // attribute that determines nothing new beyond trivialities.
        assert!(fds.contains(&Fd::new(AttrSet::EMPTY, 0)));
        assert!(fds.contains(&Fd::new(AttrSet::EMPTY, 1)));
        assert_same_fds(&t);
    }

    #[test]
    fn zip_city_dataset() {
        let t = table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["10001", "NewYork", "carol"],
            ["10001", "NewYork", "dave"],
            ["07030", "Hoboken", "erin"],
        };
        let fds = discover_fds(&t);
        // Zip → City and City → Zip are minimal FDs; Name is a key so Name → Zip, Name → City.
        assert!(fds.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(fds.contains(&Fd::new(AttrSet::single(1), 0)));
        assert!(fds.contains(&Fd::new(AttrSet::single(2), 0)));
        assert!(fds.contains(&Fd::new(AttrSet::single(2), 1)));
        // Zip → Name must NOT hold.
        assert!(!fds.contains(&Fd::new(AttrSet::single(0), 2)));
        assert_same_fds(&t);
    }

    #[test]
    fn composite_lhs_fd() {
        // Neither A nor B alone determines C, but {A, B} does.
        let t = table! {
            ["A", "B", "C"];
            ["1", "1", "x"],
            ["1", "2", "y"],
            ["2", "1", "y"],
            ["2", "2", "x"],
            ["1", "1", "x"],
        };
        let fds = discover_fds(&t);
        assert!(fds.contains(&Fd::new(AttrSet::from_indices([0, 1]), 2)));
        assert!(!fds.contains(&Fd::new(AttrSet::single(0), 2)));
        assert!(!fds.contains(&Fd::new(AttrSet::single(1), 2)));
        assert_same_fds(&t);
    }

    #[test]
    fn no_fds_in_random_like_table() {
        let t = table! {
            ["A", "B"];
            ["1", "x"],
            ["1", "y"],
            ["2", "x"],
            ["2", "y"],
        };
        let fds = discover_fds(&t);
        // Neither attribute determines the other.
        assert!(!fds.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(!fds.contains(&Fd::new(AttrSet::single(1), 0)));
        assert_same_fds(&t);
    }

    #[test]
    fn empty_and_trivial_tables() {
        let empty = f2_relation::Table::empty(f2_relation::Schema::from_names(["A"]).unwrap());
        assert!(discover_fds(&empty).is_empty());
        let single = table! { ["A", "B"]; ["x", "y"] };
        let fds = discover_fds(&single);
        // With one row, ∅ → A and ∅ → B hold.
        assert!(fds.contains(&Fd::new(AttrSet::EMPTY, 0)));
        assert!(fds.contains(&Fd::new(AttrSet::EMPTY, 1)));
    }

    #[test]
    fn max_lhs_cap_is_respected() {
        let t = table! {
            ["A", "B", "C", "D"];
            ["1", "1", "1", "x"],
            ["1", "2", "2", "y"],
            ["2", "1", "2", "z"],
            ["2", "2", "1", "w"],
            ["1", "1", "1", "x"],
        };
        let capped = Tane::with_config(TaneConfig { max_lhs_size: Some(1) }).discover(&t);
        for fd in capped.iter() {
            assert!(fd.lhs.len() <= 1);
        }
        let full = discover_fds(&t);
        // The capped result is a subset of the full result.
        for fd in capped.iter() {
            assert!(full.contains(fd));
        }
    }

    #[test]
    fn four_attribute_oracle_agreement() {
        let t = table! {
            ["A", "B", "C", "D"];
            ["1", "a", "x", "p"],
            ["1", "a", "y", "q"],
            ["2", "b", "x", "p"],
            ["2", "b", "y", "q"],
            ["3", "c", "x", "p"],
            ["3", "a", "y", "q"],
        };
        assert_same_fds(&t);
    }
}
