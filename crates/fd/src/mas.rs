//! Maximal attribute set (MAS) discovery — Step 1 of F² (§3.1, Definition 3.2).
//!
//! A MAS is an attribute set `A` such that (1) some instance of `A` occurs more than
//! once (the projection has duplicates — `A` is *non-unique*), and (2) no proper
//! superset of `A` has this property. The paper observes that MASs coincide with the
//! *maximal non-unique column combinations* of Heise et al. (DUCC) and adopts that
//! algorithm; here we implement the same search as a GenMax-style depth-first
//! enumeration over the attribute lattice:
//!
//! * non-uniqueness is anti-monotone (a subset of a non-unique set is non-unique), so
//!   the maximal non-unique sets form a border that can be enumerated depth-first;
//! * partitions are computed incrementally along the DFS path by stripped-partition
//!   products (cost O(n) per visited node);
//! * two prunings keep the visited set close to the border: the *HUT* check (if the
//!   current set plus its whole candidate tail is subsumed by a known MAS, the subtree
//!   cannot contribute a new maximal set) and leaf subsumption against already-found
//!   MASs.
//!
//! The search is exact: [`crate::oracle::brute_force_mas`] is the reference the
//! property tests compare against.

use f2_relation::{AttrSet, Partition, ProductScratch, StrippedPartition, Table};

/// The collection of MASs of a table, plus discovery statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasSet {
    /// The maximal attribute sets, in canonical (bit-pattern) order.
    pub sets: Vec<AttrSet>,
    /// Number of partition intersections the search had to perform (a proxy for the
    /// cost of the MAX step in Figure 6).
    pub partition_checks: usize,
}

impl MasSet {
    /// Number of MASs.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if the table has no MAS (every attribute combination is unique).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Iterate over the MASs.
    pub fn iter(&self) -> impl Iterator<Item = &AttrSet> {
        self.sets.iter()
    }

    /// The MASs that contain the given attribute.
    pub fn covering(&self, attr: usize) -> Vec<AttrSet> {
        self.sets.iter().copied().filter(|m| m.contains(attr)).collect()
    }

    /// All attributes covered by at least one MAS.
    pub fn covered_attributes(&self) -> AttrSet {
        self.sets.iter().fold(AttrSet::EMPTY, |acc, m| acc.union(*m))
    }

    /// Pairs of overlapping MASs (the `h` of Theorem 3.3).
    pub fn overlapping_pairs(&self) -> Vec<(AttrSet, AttrSet)> {
        let mut out = Vec::new();
        for i in 0..self.sets.len() {
            for j in (i + 1)..self.sets.len() {
                if self.sets[i].overlaps(self.sets[j]) {
                    out.push((self.sets[i], self.sets[j]));
                }
            }
        }
        out
    }
}

/// Is the attribute set non-unique (does its projection contain duplicates)?
pub fn is_non_unique(table: &Table, attrs: AttrSet) -> bool {
    Partition::compute(table, attrs).has_duplicates()
}

/// Is the attribute set a MAS of the table (non-unique and maximal)?
pub fn is_mas(table: &Table, attrs: AttrSet) -> bool {
    if attrs.is_empty() || !is_non_unique(table, attrs) {
        return false;
    }
    let universe = table.schema().all_attrs();
    attrs.direct_supersets(universe).all(|sup| !is_non_unique(table, sup))
}

/// GenMax-style depth-first MAS finder.
#[derive(Debug)]
pub struct MasFinder<'a> {
    table: &'a Table,
    singles: Vec<StrippedPartition>,
    found: Vec<AttrSet>,
    partition_checks: usize,
    scratch: ProductScratch,
}

impl<'a> MasFinder<'a> {
    /// Prepare a finder for the given table. Per-attribute stripped partitions come
    /// straight off the table's interned columnar index (built once, cached on the
    /// table), so preparation is one O(n·m) dictionary build at most.
    pub fn new(table: &'a Table) -> Self {
        let arity = table.arity();
        let singles = (0..arity).map(|a| StrippedPartition::for_attribute(table, a)).collect();
        MasFinder {
            table,
            singles,
            found: Vec::new(),
            partition_checks: 0,
            scratch: ProductScratch::new(),
        }
    }

    /// Run the search and return all MASs.
    pub fn find(mut self) -> MasSet {
        let arity = self.table.arity();
        // Seed items: attributes whose own partition already has duplicates. Attributes
        // that are unique on their own cannot appear in any non-unique set... they can:
        // uniqueness of {A} means no duplicates on A alone, and any superset of {A}
        // then has no duplicates either (anti-monotonicity), so indeed such attributes
        // never participate in a MAS.
        let items: Vec<usize> = (0..arity).filter(|&a| self.singles[a].has_duplicates()).collect();
        for (pos, &a) in items.iter().enumerate() {
            let tail: Vec<usize> = items[pos + 1..].to_vec();
            let part = self.singles[a].clone();
            self.dfs(AttrSet::single(a), part, &tail);
        }
        self.found.sort_by_key(|s| s.bits());
        MasSet { sets: self.found, partition_checks: self.partition_checks }
    }

    fn dfs(&mut self, set: AttrSet, part: StrippedPartition, tail: &[usize]) {
        // HUT pruning: if even the union of this set with its entire candidate tail is
        // contained in a known MAS, nothing new can be found below.
        let hut = tail.iter().fold(set, |acc, &a| acc.with(a));
        if self.found.iter().any(|m| hut.is_subset_of(*m)) {
            return;
        }
        // Compute the frequent (non-unique) extensions.
        let mut extensions: Vec<(usize, StrippedPartition)> = Vec::new();
        for &a in tail {
            let candidate = part.product_with(&self.singles[a], &mut self.scratch);
            self.partition_checks += 1;
            if candidate.has_duplicates() {
                extensions.push((a, candidate));
            }
        }
        if extensions.is_empty() {
            // `set` is maximal among sets whose extra attributes come after its own in
            // the item order; global maximality is ensured by the subsumption check
            // against MASs found in earlier branches.
            if !self.found.iter().any(|m| set.is_subset_of(*m)) {
                self.found.push(set);
            }
            return;
        }
        let attrs_only: Vec<usize> = extensions.iter().map(|(a, _)| *a).collect();
        for (idx, (a, p)) in extensions.into_iter().enumerate() {
            let new_tail: Vec<usize> = attrs_only[idx + 1..].to_vec();
            self.dfs(set.with(a), p, &new_tail);
        }
    }
}

/// Convenience wrapper: discover all MASs of a table.
pub fn find_mas(table: &Table) -> MasSet {
    MasFinder::new(table).find()
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::table;

    #[test]
    fn figure1_base_table_mas() {
        // Figure 1(a): MAS is {A, B, C} (the tuple (a1,b1,c1) appears twice).
        let t = table! {
            ["A", "B", "C"];
            ["a1", "b1", "c1"],
            ["a1", "b1", "c2"],
            ["a1", "b1", "c3"],
            ["a1", "b1", "c1"],
        };
        let mas = find_mas(&t);
        assert_eq!(mas.len(), 1);
        assert_eq!(mas.sets[0], AttrSet::all(3));
        assert!(is_mas(&t, AttrSet::all(3)));
        assert!(!is_mas(&t, AttrSet::from_indices([0, 1])));
    }

    #[test]
    fn figure3_table_has_two_overlapping_mas() {
        // Figure 3(a): MASs are X = {A, B} and Y = {B, C}.
        let t = table! {
            ["A", "B", "C"];
            ["a3", "b2", "c1"],
            ["a1", "b2", "c1"],
            ["a2", "b2", "c1"],
            ["a2", "b2", "c2"],
            ["a3", "b2", "c2"],
            ["a1", "b1", "c3"],
        };
        let mas = find_mas(&t);
        assert_eq!(mas.len(), 2);
        assert!(mas.sets.contains(&AttrSet::from_indices([0, 1])));
        assert!(mas.sets.contains(&AttrSet::from_indices([1, 2])));
        assert_eq!(mas.overlapping_pairs().len(), 1);
        assert_eq!(mas.covered_attributes(), AttrSet::all(3));
        assert_eq!(mas.covering(1).len(), 2);
        assert_eq!(mas.covering(0).len(), 1);
    }

    #[test]
    fn unique_table_has_no_mas() {
        let t = table! {
            ["A", "B"];
            ["a1", "b1"],
            ["a2", "b2"],
            ["a3", "b3"],
        };
        let mas = find_mas(&t);
        assert!(mas.is_empty());
        assert!(!is_mas(&t, AttrSet::single(0)));
    }

    #[test]
    fn duplicate_rows_make_full_schema_the_only_mas() {
        let t = table! {
            ["A", "B", "C", "D"];
            ["x", "y", "z", "w"],
            ["x", "y", "z", "w"],
            ["p", "q", "r", "s"],
        };
        let mas = find_mas(&t);
        assert_eq!(mas.len(), 1);
        assert_eq!(mas.sets[0], AttrSet::all(4));
    }

    #[test]
    fn non_unique_check() {
        let t = table! {
            ["A", "B"];
            ["x", "1"],
            ["x", "2"],
            ["y", "3"],
        };
        assert!(is_non_unique(&t, AttrSet::single(0)));
        assert!(!is_non_unique(&t, AttrSet::single(1)));
        assert!(!is_non_unique(&t, AttrSet::all(2)));
        let mas = find_mas(&t);
        assert_eq!(mas.sets, vec![AttrSet::single(0)]);
    }

    #[test]
    fn partition_checks_are_counted() {
        let t = table! {
            ["A", "B", "C"];
            ["a", "b", "c"],
            ["a", "b", "d"],
            ["a", "e", "c"],
        };
        let finder = MasFinder::new(&t);
        let mas = finder.find();
        assert!(mas.partition_checks > 0);
    }
}
