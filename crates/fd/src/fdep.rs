//! Functional dependencies.

use f2_relation::{AttrSet, Schema, StrippedPartition, Table};
use std::collections::BTreeSet;
use std::fmt;

/// A functional dependency `X → A` with a single right-hand-side attribute.
///
/// The paper (§2.2) assumes WLOG that every FD has a single attribute on the right-hand
/// side, since `X → YZ` decomposes into `X → Y` and `X → Z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Left-hand side (determinant) attribute set.
    pub lhs: AttrSet,
    /// Right-hand side attribute index.
    pub rhs: usize,
}

impl Fd {
    /// Construct an FD.
    pub fn new(lhs: AttrSet, rhs: usize) -> Self {
        Fd { lhs, rhs }
    }

    /// True if the FD is trivial (`A ∈ X` for `X → A`).
    pub fn is_trivial(&self) -> bool {
        self.lhs.contains(self.rhs)
    }

    /// Check whether the FD holds in a table by the partition-refinement criterion:
    /// `X → A` holds iff the stripped partition over `X` has the same error measure as
    /// the stripped partition over `X ∪ {A}` (Huhtala et al., §2 of the paper's
    /// Theorem 3.7 proof).
    pub fn holds_in(&self, table: &Table) -> bool {
        if self.is_trivial() {
            return true;
        }
        let px = StrippedPartition::for_attrs(table, self.lhs);
        let pxa = StrippedPartition::for_attrs(table, self.lhs.with(self.rhs));
        px.stripped_excess() == pxa.stripped_excess()
    }

    /// Render the FD with attribute names, e.g. `{Zip} → City`.
    pub fn display(&self, schema: &Schema) -> String {
        let names = schema.names();
        let rhs = names.get(self.rhs).cloned().unwrap_or_else(|| format!("#{}", self.rhs));
        format!("{} → {}", self.lhs.display_with(&names), rhs)
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.lhs, self.rhs)
    }
}

/// An ordered, duplicate-free set of FDs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: BTreeSet<Fd>,
}

impl FdSet {
    /// The empty set.
    pub fn new() -> Self {
        FdSet::default()
    }

    /// Add an FD.
    pub fn insert(&mut self, fd: Fd) {
        self.fds.insert(fd);
    }

    /// Number of FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, fd: &Fd) -> bool {
        self.fds.contains(fd)
    }

    /// Iterate in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Fd> {
        self.fds.iter()
    }

    /// FDs present in `self` but not in `other`.
    pub fn difference(&self, other: &FdSet) -> Vec<Fd> {
        self.fds.difference(&other.fds).copied().collect()
    }

    /// True if an FD with this exact LHS/RHS or a *smaller* LHS (subset) and the same
    /// RHS is present — i.e. the given FD is implied by minimality.
    pub fn implies(&self, fd: &Fd) -> bool {
        self.fds.iter().any(|f| f.rhs == fd.rhs && f.lhs.is_subset_of(fd.lhs))
    }

    /// Render all FDs with attribute names.
    pub fn display(&self, schema: &Schema) -> String {
        self.fds.iter().map(|f| f.display(schema)).collect::<Vec<_>>().join("\n")
    }
}

impl IntoIterator for FdSet {
    type Item = Fd;
    type IntoIter = std::collections::btree_set::IntoIter<Fd>;

    fn into_iter(self) -> Self::IntoIter {
        self.fds.into_iter()
    }
}

impl FromIterator<Fd> for FdSet {
    fn from_iter<T: IntoIterator<Item = Fd>>(iter: T) -> Self {
        FdSet { fds: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::table;

    fn zip_city() -> Table {
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["10001", "NewYork", "carol"],
            ["10001", "NewYork", "dave"],
            ["07030", "Hoboken", "erin"],
        }
    }

    #[test]
    fn fd_holds_detection() {
        let t = zip_city();
        // Zip → City holds.
        assert!(Fd::new(AttrSet::single(0), 1).holds_in(&t));
        // City → Zip holds too in this instance.
        assert!(Fd::new(AttrSet::single(1), 0).holds_in(&t));
        // Zip → Name does not hold.
        assert!(!Fd::new(AttrSet::single(0), 2).holds_in(&t));
        // Name → Zip holds (Name is a key).
        assert!(Fd::new(AttrSet::single(2), 0).holds_in(&t));
        // Trivial FD always holds.
        assert!(Fd::new(AttrSet::from_indices([0, 1]), 0).holds_in(&t));
    }

    #[test]
    fn triviality() {
        assert!(Fd::new(AttrSet::from_indices([0, 1]), 1).is_trivial());
        assert!(!Fd::new(AttrSet::from_indices([0, 1]), 2).is_trivial());
    }

    #[test]
    fn display_with_schema() {
        let t = zip_city();
        let fd = Fd::new(AttrSet::single(0), 1);
        assert_eq!(fd.display(t.schema()), "{Zip} → City");
        assert_eq!(fd.to_string(), "{0} → 1");
    }

    #[test]
    fn fdset_operations() {
        let a = Fd::new(AttrSet::single(0), 1);
        let b = Fd::new(AttrSet::single(1), 0);
        let c = Fd::new(AttrSet::from_indices([0, 2]), 1);
        let mut set = FdSet::new();
        assert!(set.is_empty());
        set.insert(a);
        set.insert(a);
        set.insert(b);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&a));
        assert!(!set.contains(&c));
        // a has lhs {0} ⊆ {0,2} and same rhs → c is implied.
        assert!(set.implies(&c));
        assert!(!set.implies(&Fd::new(AttrSet::single(2), 0)));
        let other = FdSet::from_iter([b]);
        assert_eq!(set.difference(&other), vec![a]);
    }
}
