//! The FD lattice used by Step 4 of F² to eliminate false-positive FDs (§3.4, Fig. 5).
//!
//! Each MAS `M` roots one lattice. The level-2 nodes have the form `X : Y` with
//! `Y ∈ M` a single attribute and `X = M \ {Y}`; the children of `X : Y` are
//! `X' : Y` for every `X' ⊂ X` with `|X'| = |X| − 1`. The data owner walks the
//! lattice top-down; whenever a node is identified as a *maximum false-positive FD*
//! (the corresponding FD is violated in the plaintext data) the node **and all of its
//! descendants** are marked as checked, because the artificial records inserted for the
//! node also break every FD with a smaller left-hand side and the same right-hand side.

use f2_relation::AttrSet;

/// The FD lattice rooted at one MAS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdLattice {
    mas: AttrSet,
}

/// A lattice node `X : Y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatticeNode {
    /// Left-hand side.
    pub lhs: AttrSet,
    /// Right-hand side attribute.
    pub rhs: usize,
}

impl FdLattice {
    /// Build the lattice for a MAS.
    pub fn new(mas: AttrSet) -> Self {
        FdLattice { mas }
    }

    /// The MAS this lattice is rooted at.
    pub fn mas(&self) -> AttrSet {
        self.mas
    }

    /// All level-2 nodes `M \ {Y} : Y`.
    pub fn top_nodes(&self) -> Vec<LatticeNode> {
        self.mas
            .iter()
            .map(|y| LatticeNode { lhs: self.mas.without(y), rhs: y })
            .filter(|n| !n.lhs.is_empty())
            .collect()
    }

    /// Total number of nodes from level 2 downwards (used to sanity-check the
    /// Theorem 3.6 bound in tests): for each rhs `Y` there are `2^(|M|-1) - 1`
    /// non-empty LHS subsets.
    pub fn node_count(&self) -> usize {
        let m = self.mas.len();
        if m < 2 {
            return 0;
        }
        m * ((1usize << (m - 1)) - 1)
    }

    /// Walk the lattice top-down (levels of decreasing LHS size). For each unchecked
    /// node the `is_violated` callback decides whether the FD `X → Y` is violated in
    /// the plaintext data (hence would be a false positive in the encrypted table). If
    /// it returns `true`, the node is reported as a *maximum false-positive FD* and the
    /// node plus all of its descendants are marked checked; otherwise only the node
    /// itself is marked checked.
    ///
    /// Returns the maximum false-positive FDs in traversal order.
    pub fn find_maximum_false_positives<F>(&self, mut is_violated: F) -> Vec<LatticeNode>
    where
        F: FnMut(AttrSet, usize) -> bool,
    {
        let mut covered: Vec<LatticeNode> = Vec::new();
        let mut result: Vec<LatticeNode> = Vec::new();
        let m = self.mas.len();
        if m < 2 {
            return result;
        }
        // Level ℓ has LHS size |M| - ℓ + 1... we simply iterate LHS sizes from |M|-1
        // down to 1.
        for lhs_size in (1..m).rev() {
            for y in self.mas.iter() {
                let pool = self.mas.without(y);
                for lhs in subsets_of_size(pool, lhs_size) {
                    let node = LatticeNode { lhs, rhs: y };
                    // Skip nodes covered by an ancestor already identified as a maximum
                    // false positive (same RHS, LHS ⊆ ancestor LHS).
                    if covered.iter().any(|c| c.rhs == y && lhs.is_subset_of(c.lhs)) {
                        continue;
                    }
                    if is_violated(lhs, y) {
                        covered.push(node);
                        result.push(node);
                    }
                }
            }
        }
        result
    }
}

/// Enumerate all subsets of `pool` with exactly `size` attributes.
pub fn subsets_of_size(pool: AttrSet, size: usize) -> Vec<AttrSet> {
    let attrs: Vec<usize> = pool.iter().collect();
    let mut out = Vec::new();
    if size > attrs.len() {
        return out;
    }
    // Iterative combination enumeration.
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(AttrSet::from_indices(idx.iter().map(|&i| attrs[i])));
        // Advance the combination.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + attrs.len() - size {
                idx[i] += 1;
                for j in i + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_enumeration() {
        let pool = AttrSet::from_indices([1, 3, 5]);
        let s2 = subsets_of_size(pool, 2);
        assert_eq!(s2.len(), 3);
        assert!(s2.contains(&AttrSet::from_indices([1, 3])));
        assert!(s2.contains(&AttrSet::from_indices([1, 5])));
        assert!(s2.contains(&AttrSet::from_indices([3, 5])));
        assert_eq!(subsets_of_size(pool, 0), vec![AttrSet::EMPTY]);
        assert_eq!(subsets_of_size(pool, 4), Vec::<AttrSet>::new());
        assert_eq!(subsets_of_size(pool, 3), vec![pool]);
    }

    #[test]
    fn top_nodes_of_three_attribute_mas() {
        // Figure 5: MAS {A,B,C} has level-2 nodes AB:C, AC:B, BC:A.
        let lattice = FdLattice::new(AttrSet::all(3));
        let tops = lattice.top_nodes();
        assert_eq!(tops.len(), 3);
        assert!(tops.contains(&LatticeNode { lhs: AttrSet::from_indices([0, 1]), rhs: 2 }));
        assert!(tops.contains(&LatticeNode { lhs: AttrSet::from_indices([0, 2]), rhs: 1 }));
        assert!(tops.contains(&LatticeNode { lhs: AttrSet::from_indices([1, 2]), rhs: 0 }));
    }

    #[test]
    fn node_count_matches_enumeration() {
        for m in 2..6 {
            let lattice = FdLattice::new(AttrSet::all(m));
            let mut count = 0;
            for y in 0..m {
                for size in 1..m {
                    count += subsets_of_size(AttrSet::all(m).without(y), size).len();
                }
            }
            assert_eq!(lattice.node_count(), count, "m = {m}");
        }
        assert_eq!(FdLattice::new(AttrSet::single(0)).node_count(), 0);
    }

    #[test]
    fn descendants_of_violated_nodes_are_skipped() {
        // MAS {A,B,C}. Pretend every FD is violated: only the three top nodes should be
        // reported (their descendants are covered).
        let lattice = FdLattice::new(AttrSet::all(3));
        let mut asked = Vec::new();
        let fps = lattice.find_maximum_false_positives(|lhs, rhs| {
            asked.push((lhs, rhs));
            true
        });
        assert_eq!(fps.len(), 3);
        assert!(fps.iter().all(|n| n.lhs.len() == 2));
        // The callback must never have been asked about a covered descendant.
        assert_eq!(asked.len(), 3);
    }

    #[test]
    fn non_violated_nodes_descend() {
        // MAS {A,B,C}; only single-attribute LHS nodes are violated.
        let lattice = FdLattice::new(AttrSet::all(3));
        let fps = lattice.find_maximum_false_positives(|lhs, _| lhs.len() == 1);
        // Each rhs contributes its two single-attribute LHS nodes.
        assert_eq!(fps.len(), 6);
        assert!(fps.iter().all(|n| n.lhs.len() == 1));
    }

    #[test]
    fn nothing_violated_nothing_reported() {
        let lattice = FdLattice::new(AttrSet::all(4));
        let fps = lattice.find_maximum_false_positives(|_, _| false);
        assert!(fps.is_empty());
        // Every node must have been visited exactly once.
        let mut visits = 0;
        lattice.find_maximum_false_positives(|_, _| {
            visits += 1;
            false
        });
        assert_eq!(visits, lattice.node_count());
    }
}
