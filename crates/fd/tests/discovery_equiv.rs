//! Property suite pinning the interned discovery stack — TANE's incremental
//! stripped-partition refinement (traversal-owned level cache, scratch products) and
//! the MAS finder's columnar singles — to the brute-force definitional oracles, on
//! random collision-heavy tables.

use f2_fd::mas::{find_mas, is_mas};
use f2_fd::oracle::{brute_force_fds, brute_force_mas};
use f2_fd::tane::discover_fds;
use f2_relation::{Schema, Table, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// A value from a tiny pool so FDs and duplicate projections arise often.
fn value_from(selector: u8) -> Value {
    match selector % 8 {
        0 => Value::Null,
        s @ 1..=4 => Value::Int(i64::from(s) % 3),
        s => Value::text(["p", "q"][s as usize % 2]),
    }
}

fn table_from(arity: usize, cells: Vec<u8>) -> Table {
    let schema = Schema::from_names((0..arity).map(|a| format!("A{a}"))).expect("small schema");
    let records = cells
        .chunks_exact(arity)
        .map(|row| f2_relation::Record::new(row.iter().map(|&s| value_from(s)).collect()))
        .collect();
    Table::new(schema, records).expect("consistent arity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tane_matches_brute_force_oracle(arity in 1usize..=4, cells in vec(0u8..=255, 0..72)) {
        let table = table_from(arity, cells);
        let tane = discover_fds(&table);
        let oracle = brute_force_fds(&table);
        prop_assert_eq!(tane, oracle);
    }

    #[test]
    fn mas_finder_matches_brute_force_oracle(arity in 1usize..=4, cells in vec(0u8..=255, 0..72)) {
        let table = table_from(arity, cells);
        let found = find_mas(&table);
        let oracle = brute_force_mas(&table);
        prop_assert_eq!(found.sets.clone(), oracle);
        for mas in &found.sets {
            prop_assert!(is_mas(&table, *mas));
        }
    }

    /// Back-to-back runs on *different* tables from the same thread must not bleed
    /// state into each other (the former thread-local partition cache could).
    #[test]
    fn tane_runs_are_isolated_across_tables(
        arity in 1usize..=3,
        cells_a in vec(0u8..=255, 0..45),
        cells_b in vec(0u8..=255, 0..45),
    ) {
        let ta = table_from(arity, cells_a);
        let tb = table_from(arity, cells_b);
        let first = discover_fds(&ta);
        let _interleaved = discover_fds(&tb);
        let second = discover_fds(&ta);
        prop_assert_eq!(first, second);
    }
}
