//! Cross-crate integration tests: exact decryption round-trips, frequency flattening,
//! α-security measurements, and the overhead bounds claimed by Theorems 3.3 and 3.6.

use f2::attack::{AttackExperiment, FrequencyAttacker, KerckhoffsAttacker};
use f2::crypto::MasterKey;
use f2::{F2Config, F2Decryptor, F2Encryptor};
use f2_datagen::Dataset;
use std::collections::HashMap;

fn encrypt(
    dataset: Dataset,
    rows: usize,
    alpha: f64,
    split: usize,
) -> (f2::Table, f2::EncryptionOutcome) {
    let plain = dataset.generate(rows, 77);
    let enc = F2Encryptor::new(
        F2Config::new(alpha, split).unwrap().with_seed(99),
        MasterKey::from_seed(99),
    );
    let out = enc.encrypt(&plain).unwrap();
    (plain, out)
}

#[test]
fn roundtrip_on_generated_datasets() {
    for dataset in [Dataset::Orders, Dataset::Customer, Dataset::Synthetic] {
        let (plain, out) = encrypt(dataset, 120, 0.34, 2);
        let dec = F2Decryptor::new(MasterKey::from_seed(99));
        let recovered = dec.recover_from_outcome(&out).unwrap();
        assert!(recovered.multiset_eq(&plain), "round-trip failed on {}", dataset.name());
    }
}

#[test]
fn ciphertext_frequencies_are_homogenised_within_ecgs() {
    // Within every MAS, bucket the ciphertext combinations by frequency; by
    // construction every ECG of size ≥ k shares one frequency, so every observed
    // frequency class must contain at least k = ⌈1/α⌉ distinct ciphertext combinations
    // (this is exactly the property that gives α-security in §4.1).
    let alpha = 0.34;
    let (_, out) = encrypt(Dataset::Orders, 200, alpha, 2);
    let k = (1.0f64 / alpha).ceil() as usize;
    for &mas in &out.mas_sets {
        let hist = out.encrypted.frequency_histogram(mas);
        let mut by_freq: HashMap<usize, usize> = HashMap::new();
        for &f in hist.values() {
            *by_freq.entry(f).or_insert(0) += 1;
        }
        for (freq, combos) in by_freq {
            if freq <= 1 {
                continue; // frequency-1 combinations are their own (large) bucket
            }
            assert!(
                combos >= k,
                "only {combos} ciphertext combinations share frequency {freq} on MAS {mas}"
            );
        }
    }
}

#[test]
fn empirical_alpha_security_holds() {
    let alpha = 0.25;
    let (plain, out) = encrypt(Dataset::Orders, 250, alpha, 2);
    for &mas in out.mas_sets.iter().take(2) {
        let exp = AttackExperiment::for_f2_outcome(&plain, &out, mas);
        for adversary in [&FrequencyAttacker as &dyn f2::attack::Adversary, &KerckhoffsAttacker] {
            let outcome = exp.run(adversary, 800, 5);
            assert!(
                outcome.success_rate() <= alpha + 0.1,
                "{} exceeded alpha on MAS {}: {}",
                adversary.name(),
                mas,
                outcome.success_rate()
            );
        }
    }
}

#[test]
fn overhead_bounds_from_the_theorems() {
    let (plain, out) = encrypt(Dataset::Synthetic, 300, 0.34, 2);
    let report = &out.report;
    let n = plain.row_count();
    let h = report.overlapping_mas_pairs;
    // Theorem 3.3: conflict resolution adds at most h·n records.
    assert!(
        report.overhead.syn_rows <= h * n,
        "SYN rows {} exceed h·n = {}",
        report.overhead.syn_rows,
        h * n
    );
    // Theorem 3.6 lower bound: if any false positive was eliminated, at least 2k
    // records were added; and FP rows are always an even number of record pairs.
    let k = (1.0f64 / 0.34).ceil() as usize;
    if report.false_positive_fds > 0 {
        assert!(report.overhead.fp_rows >= 2 * k);
    }
    assert_eq!(report.overhead.fp_rows % 2, 0);
    // The encrypted table size matches the accounting.
    assert_eq!(out.encrypted.row_count(), report.overhead.total_rows());
}

#[test]
fn encrypted_table_survives_csv_roundtrip() {
    // The outsourcing workflow ships the encrypted table as CSV; nothing may be lost.
    let (_, out) = encrypt(Dataset::Customer, 80, 0.5, 2);
    let csv = f2::relation::csv::to_csv_string(&out.encrypted);
    let back = f2::relation::csv::from_csv_string(out.encrypted.schema(), &csv).unwrap();
    assert_eq!(back, out.encrypted);
}

#[test]
fn report_timings_are_consistent() {
    let (_, out) = encrypt(Dataset::Orders, 150, 0.5, 2);
    let t = &out.report.timings;
    assert!(t.total() >= t.max);
    assert!(t.total() >= t.sse);
    assert!(out.report.mas_count >= 1);
    assert!(out.report.equivalence_classes > 0);
}
