//! Backend-conformance suite for the pluggable [`Scheme`] API.
//!
//! Every backend must satisfy the same contract: `decrypt(encrypt(t))` is
//! multiset-equal to `t`, every ciphertext cell is an opaque byte string, and no
//! plaintext value survives in the encrypted table. The F² backend is swept across
//! the (α ∈ {1.0, 0.5, 0.2}) × (ϖ ∈ {1, 2, 3}) configuration grid; the baselines
//! (deterministic AES, probabilistic PRF, Paillier) take no α/ϖ, so they are checked
//! once per fixture. The suite runs on hand-written `table!` fixtures and on all
//! three generated datasets.

use f2::crypto::MasterKey;
use f2::relation::table;
use f2::{DetScheme, PaillierScheme, ProbScheme, Scheme, Table, F2};
use f2_datagen::Dataset;

/// Hand-written fixtures: FD-rich, skewed, and heterogeneous value shapes.
fn fixtures() -> Vec<Table> {
    vec![
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["07030", "Hoboken", "carol"],
            ["10001", "NewYork", "dave"],
            ["10001", "NewYork", "erin"],
            ["08540", "Princeton", "frank"],
            ["08540", "Princeton", "grace"],
        },
        // Skewed single-MAS table (the frequency-analysis target shape).
        table! {
            ["A", "B"];
            ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"],
            ["a2", "b2"], ["a2", "b2"],
            ["a3", "b3"],
        },
        // Overlapping-MAS table (the paper's §3.3.2 running example).
        table! {
            ["A", "B", "C"];
            ["a3", "b2", "c1"],
            ["a1", "b2", "c1"],
            ["a2", "b2", "c1"],
            ["a2", "b2", "c2"],
            ["a3", "b2", "c2"],
            ["a1", "b1", "c3"],
        },
    ]
}

/// Small slices of the generated datasets (all value types: Int, Text, Decimal, Date).
fn datagen_tables(rows: usize) -> Vec<(Table, &'static str)> {
    [Dataset::Orders, Dataset::Customer, Dataset::Synthetic]
        .into_iter()
        .map(|d| (d.generate(rows, 77), d.name()))
        .collect()
}

/// The conformance contract every backend must satisfy on every table.
fn assert_conformance(scheme: &dyn Scheme, table: &Table, label: &str) {
    let outcome = scheme
        .encrypt(table)
        .unwrap_or_else(|e| panic!("{}: encrypt failed on {label}: {e}", scheme.name()));
    // 1. Every cell of the outsourced table is opaque ciphertext…
    let plain_values = table.all_values();
    for (_, rec) in outcome.encrypted.iter() {
        for v in rec.values() {
            assert!(v.is_bytes(), "{}: plaintext cell leaked on {label}", scheme.name());
            // 2. …and no plaintext value survives verbatim.
            assert!(
                !plain_values.contains(v),
                "{}: plaintext value survived encryption on {label}",
                scheme.name()
            );
        }
    }
    // 3. The owner recovers the exact original multiset of rows.
    let recovered = scheme
        .decrypt(&outcome)
        .unwrap_or_else(|e| panic!("{}: decrypt failed on {label}: {e}", scheme.name()));
    assert!(
        recovered.multiset_eq(table),
        "{}: roundtrip lost or fabricated rows on {label}",
        scheme.name()
    );
    // 4. The ground-truth row mapping points at real rows of both tables.
    for (out_row, orig_row) in scheme.real_rows(&outcome).expect("matching outcome") {
        assert!(out_row < outcome.encrypted.row_count());
        assert!(orig_row < table.row_count());
    }
}

const ALPHA_GRID: [f64; 3] = [1.0, 0.5, 0.2];
const SPLIT_GRID: [usize; 3] = [1, 2, 3];

#[test]
fn f2_conforms_across_the_alpha_split_grid_on_fixtures() {
    for (i, t) in fixtures().iter().enumerate() {
        for alpha in ALPHA_GRID {
            for split in SPLIT_GRID {
                let scheme = F2::builder()
                    .alpha(alpha)
                    .split_factor(split)
                    .seed(13)
                    .build()
                    .expect("grid point is valid");
                assert_conformance(&scheme, t, &format!("fixture#{i} α={alpha} ϖ={split}"));
            }
        }
    }
}

#[test]
fn f2_conforms_across_the_alpha_split_grid_on_datagen() {
    // 40 rows keeps the 9-point grid × 3 datasets affordable under the debug profile
    // (MAS discovery on the 21-attribute Customer table dominates).
    for (t, name) in datagen_tables(40) {
        for alpha in ALPHA_GRID {
            for split in SPLIT_GRID {
                let scheme = F2::builder()
                    .alpha(alpha)
                    .split_factor(split)
                    .seed(29)
                    .build()
                    .expect("grid point is valid");
                assert_conformance(&scheme, &t, &format!("{name} α={alpha} ϖ={split}"));
            }
        }
    }
}

#[test]
fn deterministic_aes_conforms() {
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    for (i, t) in fixtures().iter().enumerate() {
        assert_conformance(&scheme, t, &format!("fixture#{i}"));
    }
    for (t, name) in datagen_tables(90) {
        assert_conformance(&scheme, &t, name);
    }
}

#[test]
fn probabilistic_prf_conforms() {
    let scheme = ProbScheme::new(MasterKey::from_seed(43), 43);
    for (i, t) in fixtures().iter().enumerate() {
        assert_conformance(&scheme, t, &format!("fixture#{i}"));
    }
    for (t, name) in datagen_tables(90) {
        assert_conformance(&scheme, &t, name);
    }
}

#[test]
fn paillier_conforms() {
    // Small modulus and row counts: textbook Paillier on a from-scratch bigint is
    // orders of magnitude slower than the symmetric backends (that asymmetry is the
    // paper's Figure 8), and this test runs under the debug profile.
    let scheme = PaillierScheme::new(64, 47).expect("modulus large enough");
    for (i, t) in fixtures().iter().enumerate() {
        assert_conformance(&scheme, t, &format!("fixture#{i}"));
    }
    for (t, name) in datagen_tables(12) {
        assert_conformance(&scheme, &t, name);
    }
}

#[test]
fn packed_paillier_conforms() {
    // The packed framing spreads one row's ciphertext frames across its cells, so the
    // whole conformance contract (opaque cells, no plaintext survivors, exact
    // roundtrip) must hold exactly as it does per cell.
    let scheme = PaillierScheme::new(64, 53).expect("modulus large enough").packed();
    for (i, t) in fixtures().iter().enumerate() {
        assert_conformance(&scheme, t, &format!("fixture#{i}"));
    }
    for (t, name) in datagen_tables(12) {
        assert_conformance(&scheme, &t, name);
    }
}

#[test]
fn f2_builder_rejects_invalid_parameters() {
    // α must lie in (0, 1].
    assert!(F2::builder().alpha(0.0).build().is_err());
    assert!(F2::builder().alpha(-0.3).build().is_err());
    assert!(F2::builder().alpha(1.0001).build().is_err());
    assert!(F2::builder().alpha(f64::NAN).build().is_err());
    // ϖ must be ≥ 1.
    assert!(F2::builder().split_factor(0).build().is_err());
    // min_real_rows must be ≥ 1.
    assert!(F2::builder().min_real_rows(0).build().is_err());
    // config() surfaces the same validation without building a scheme.
    assert!(F2::builder().alpha(2.0).config().is_err());
    // The boundary values are accepted.
    assert!(F2::builder().alpha(1.0).split_factor(1).min_real_rows(1).build().is_ok());
}

#[test]
fn f2_builder_parameters_reach_the_scheme() {
    let scheme =
        F2::builder().alpha(0.25).split_factor(3).seed(99).min_real_rows(4).build().unwrap();
    let config = scheme.config();
    assert_eq!(config.alpha, 0.25);
    assert_eq!(config.split_factor, 3);
    assert_eq!(config.seed, 99);
    assert_eq!(config.min_real_rows_per_instance, 4);
    assert_eq!(config.ecg_size(), 4);
}

#[test]
fn backends_expose_distinct_names() {
    let master = MasterKey::from_seed(1);
    let schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(F2::builder().build().unwrap()),
        Box::new(DetScheme::new(master.clone())),
        Box::new(ProbScheme::new(master, 1)),
        Box::new(PaillierScheme::new(64, 1).unwrap()),
        Box::new(PaillierScheme::new(64, 1).unwrap().packed()),
    ];
    let mut names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    assert_eq!(names.len(), 5);
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 5, "backend names must be distinct");
}

#[test]
fn f2_decrypt_requires_matching_owner_state() {
    let t = &fixtures()[0];
    let f2 = F2::builder().seed(3).build().unwrap();
    let det = DetScheme::new(MasterKey::from_seed(3));
    let det_outcome = det.encrypt(t).unwrap();
    assert!(f2.decrypt(&det_outcome).is_err());
    let f2_outcome = f2.encrypt(t).unwrap();
    assert!(det.decrypt(&f2_outcome).is_err());
}
