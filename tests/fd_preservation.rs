//! Integration test for the paper's central correctness claim (Theorem 3.7):
//! the FDs of the encrypted table are exactly the FDs of the original table —
//! nothing is lost, and no false positive is introduced.

use f2::crypto::MasterKey;
use f2::fd::oracle::brute_force_fds;
use f2::fd::tane::discover_fds;
use f2::relation::table;
use f2::{F2Config, F2Encryptor, Table};
use f2_datagen::{CustomerConfig, CustomerGenerator, Dataset};

/// Check FD preservation the way the paper's Theorem 3.7 guarantees it: every
/// non-trivial FD with a **non-empty** left-hand side holds in the original table iff
/// it holds in the encrypted table. Constant attributes (FDs of the form `∅ → A`) are
/// intentionally *not* preserved — frequency hiding requires splitting a constant's
/// single value into several ciphertexts (see EXPERIMENTS.md, "Deviations").
fn assert_fds_preserved(plain: &Table, alpha: f64, split: usize, seed: u64) {
    let encryptor = F2Encryptor::new(
        F2Config::new(alpha, split).unwrap().with_seed(seed),
        MasterKey::from_seed(seed),
    );
    let outcome = encryptor.encrypt(plain).unwrap();
    let plain_fds = discover_fds(plain);
    let cipher_fds = discover_fds(&outcome.encrypted);
    // Every plaintext FD (with non-empty LHS) must still hold on the ciphertext.
    for fd in plain_fds.iter().filter(|fd| !fd.lhs.is_empty()) {
        assert!(
            fd.holds_in(&outcome.encrypted),
            "FD {} lost by encryption (alpha={alpha}, split={split})\nplain:\n{}\ncipher:\n{}",
            fd.display(plain.schema()),
            plain_fds.display(plain.schema()),
            cipher_fds.display(plain.schema())
        );
    }
    // Every FD the server discovers on the ciphertext must be a true FD of the
    // plaintext — no false positives.
    for fd in cipher_fds.iter().filter(|fd| !fd.lhs.is_empty()) {
        assert!(
            fd.holds_in(plain),
            "false-positive FD {} introduced (alpha={alpha}, split={split})",
            fd.display(plain.schema())
        );
    }
}

#[test]
fn zip_city_fds_survive_encryption() {
    let t = table! {
        ["Zip", "City", "Name"];
        ["07030", "Hoboken", "alice"],
        ["07030", "Hoboken", "bob"],
        ["07030", "Hoboken", "carol"],
        ["10001", "NewYork", "dave"],
        ["10001", "NewYork", "erin"],
        ["08540", "Princeton", "frank"],
        ["08540", "Princeton", "grace"],
        ["08540", "Princeton", "heidi"],
    };
    for (alpha, split) in [(1.0, 1), (0.5, 2), (0.34, 2), (0.25, 3)] {
        assert_fds_preserved(&t, alpha, split, 7);
    }
}

#[test]
fn figure1_base_table() {
    let t = table! {
        ["A", "B", "C"];
        ["a1", "b1", "c1"],
        ["a1", "b1", "c2"],
        ["a1", "b1", "c3"],
        ["a1", "b1", "c1"],
    };
    assert_fds_preserved(&t, 0.5, 2, 1);
}

#[test]
fn figure3_overlapping_mas_table() {
    // Two overlapping MASs {A,B} and {B,C}; the FD C → B must survive conflict
    // resolution (the paper's running example of §3.3.2).
    let t = table! {
        ["A", "B", "C"];
        ["a3", "b2", "c1"],
        ["a1", "b2", "c1"],
        ["a2", "b2", "c1"],
        ["a2", "b2", "c2"],
        ["a3", "b2", "c2"],
        ["a1", "b1", "c3"],
    };
    for (alpha, split) in [(0.5, 2), (0.34, 1)] {
        assert_fds_preserved(&t, alpha, split, 3);
    }
}

#[test]
fn figure4_false_positive_table() {
    // A → B does not hold in the plaintext; without Step 4 it would become a false
    // positive in the ciphertext (Example 3.1).
    let t = table! {
        ["A", "B"];
        ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"],
        ["a2", "b3"], ["a2", "b3"],
        ["a1", "b2"], ["a1", "b2"], ["a1", "b2"], ["a1", "b2"],
        ["a2", "b4"], ["a2", "b4"], ["a2", "b4"],
    };
    assert_fds_preserved(&t, 1.0 / 3.0, 2, 5);
}

#[test]
fn generated_customer_sample_fds_preserved() {
    // A slice of the TPC-C-style Customer table restricted to the address attributes
    // (ZIP → CITY → STATE planted FDs) plus a payment counter.
    let full =
        CustomerGenerator::new(CustomerConfig { rows: 300, seed: 11, ..CustomerConfig::default() })
            .generate();
    let schema = full.schema().clone();
    let keep = ["C_CITY", "C_STATE", "C_ZIP", "C_CREDIT", "C_PAYMENT_CNT"];
    let indices: Vec<usize> = keep.iter().map(|n| schema.index_of(n).unwrap()).collect();
    let small_schema = f2::Schema::from_names(keep).unwrap();
    let rows = full
        .rows()
        .iter()
        .map(|r| f2::Record::new(indices.iter().map(|&i| r.get(i).unwrap().clone()).collect()))
        .collect();
    let t = Table::new(small_schema, rows).unwrap();
    assert_fds_preserved(&t, 0.25, 2, 13);
}

#[test]
fn random_small_tables_fds_preserved() {
    // A light-weight randomized sweep (the heavier property tests live in the crates).
    for seed in 0..6u64 {
        let t = Dataset::Synthetic.generate(60, seed).truncated(40);
        // Restrict to 4 attributes so the brute-force oracle stays fast, and verify
        // TANE against the oracle on the plaintext side as a sanity check.
        let schema = f2::Schema::from_names(["S0", "S1", "S2", "S3"]).unwrap();
        let rows = t
            .rows()
            .iter()
            .map(|r| f2::Record::new((0..4).map(|i| r.get(i).unwrap().clone()).collect()))
            .collect();
        let small = Table::new(schema, rows).unwrap();
        assert_eq!(discover_fds(&small), brute_force_fds(&small));
        assert_fds_preserved(&small, 0.5, 2, seed);
    }
}
