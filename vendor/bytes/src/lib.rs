//! Minimal offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build image has no access to a crates registry, so the workspace vendors the
//! slice of the `bytes` 1.x API used here: [`Bytes`], an immutable, cheaply cloneable
//! byte buffer. Ciphertext cells are created once and then copied across many rows of
//! the encrypted table (scaling copies, instance sharing), so the reference-counted
//! clone is what keeps F²'s assembly phase linear in output size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. `clone` is O(1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes::copy_from_slice(&a)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[9]), Bytes::from(&[9u8][..]));
    }

    #[test]
    fn cheap_clone_is_equal() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn equality_hash_and_order_follow_content() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Bytes::from(vec![1u8, 2]);
        let b = Bytes::copy_from_slice(&[1, 2]);
        let c = Bytes::from(vec![1u8, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c);
        let hash = |x: &Bytes| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'a', 0x00, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\x22\"");
    }
}
