//! Minimal offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build image has no access to a crates registry, so the workspace vendors the
//! slice of the proptest API its test suites use: integer-range strategies, tuples,
//! [`collection::vec`], [`Strategy::prop_map`] / [`Strategy::prop_flat_map`], the
//! [`proptest!`] macro with an optional `proptest_config` attribute, and the
//! `prop_assert*` macros.
//!
//! Semantics differ from the real crate in two deliberate ways: sampling is
//! **deterministic** (a fixed per-test seed plus the case index, so failures are
//! reproducible without a persistence file), and there is **no shrinking** — a failing
//! case panics with the case index so it can be replayed by filtering on the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default; our samples are cheaper (no shrinking state).
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to build a second strategy and draw from that
    /// (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (wide(rng) % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128;
                if span == u128::MAX {
                    return wide(rng) as $t;
                }
                lo + (wide(rng) % (span + 1)) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, u128);

/// Deterministic per-case generator used by the [`proptest!`] macro: seeded from the
/// property name and case index, so every property sees its own reproducible stream.
pub fn case_rng(property: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    // FNV-1a over the property name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ u64::from(case))
}

/// 128 uniformly random bits.
fn wide(rng: &mut StdRng) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = (self.size.lo..=self.size.hi).sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Like `assert!`, inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Like `assert_eq!`, inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Like `assert_ne!`, inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define `#[test]` functions that run their body over many sampled inputs.
///
/// Supported grammar (a subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn property(x in 0u64..10, mut v in collection::vec(0u8..3, 1..5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident ( $($argp:pat_param in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $argp = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&x));
            let y = (3usize..=5).sample(&mut rng);
            assert!((3..=5).contains(&y));
            let z = (0u128..u128::MAX).sample(&mut rng);
            assert!(z < u128::MAX);
            let full = (0u128..=u128::MAX).sample(&mut rng);
            let _ = full;
        }
    }

    #[test]
    fn map_flat_map_and_vec_compose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let strat = (1usize..=3, 3usize..=4).prop_flat_map(|(a, b)| {
            crate::collection::vec(0u8..10, a..=b).prop_map(move |v| (a, v))
        });
        for _ in 0..100 {
            let (a, v) = strat.sample(&mut rng);
            assert!((1..=3).contains(&a));
            assert!(v.len() >= a && v.len() <= 4);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_multiple_args(a in 0u64..100, mut v in crate::collection::vec(0u8..3, 1..4)) {
            v.sort_unstable();
            prop_assert!(a < 100);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v.iter().copied().max(), v.last().copied());
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 5u8..6) {
            prop_assert_eq!(x, 5);
        }
    }
}
