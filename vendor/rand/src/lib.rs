//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build image for this repository has no access to a crates registry, so the
//! workspace vendors the *tiny* slice of the `rand` 0.8 API that the F² code actually
//! uses: a deterministic, seedable generator ([`rngs::StdRng`]) exposing `next_u32`,
//! `next_u64` and `fill_bytes` through the [`Rng`] trait, and [`SeedableRng`] with
//! `seed_from_u64`.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — statistically solid
//! for workload generation, nonce drawing, and Monte-Carlo attack experiments, which is
//! all this workspace needs. It makes no cryptographic claim; F²'s security rests on
//! its AES-based PRF, not on this RNG (the paper's `r` only needs to be non-repeating,
//! and 128-bit values drawn from any full-period generator are).
//!
//! The stream differs from the real crate's `StdRng` (ChaCha12), so seeds produce
//! different — but still reproducible — tables than a build against crates.io would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of randomness, folding together the `RngCore`/`Rng` split of the real
/// crate (every generator here implements the whole surface directly).
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (expanded internally to full state).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "filled buffer all zero");
            }
        }
    }

    #[test]
    fn works_through_mut_references_and_impl_trait() {
        fn draw(mut rng: impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let direct = StdRng::seed_from_u64(3).next_u64();
        assert_eq!(draw(&mut rng), direct);
    }

    #[test]
    fn u32_is_high_word() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }

    #[test]
    fn rough_uniformity() {
        // Sanity check, not a statistical test: bit balance over 10k draws.
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0u64;
        for _ in 0..10_000 {
            ones += rng.next_u64().count_ones() as u64;
        }
        let expected = 10_000 * 32;
        let deviation = (ones as i64 - expected as i64).abs();
        assert!(deviation < 10_000, "bit balance off: {ones} vs {expected}");
    }
}
