//! Minimal offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build image has no access to a crates registry, so the workspace vendors the
//! slice of the criterion 0.5 API that the `f2-bench` targets use: benchmark groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `throughput`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's bootstrap
//! statistics it reports min / median / mean wall-clock time over the configured
//! number of samples — enough to compare the F² backends and reproduce the *shape* of
//! the paper's figures from `cargo bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Soft wall-clock budget per benchmark; sampling stops early once exceeded.
const SAMPLE_BUDGET: Duration = Duration::from_secs(5);

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Run a free-standing benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.to_string(), DEFAULT_SAMPLE_SIZE, None, f);
        self
    }
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the per-iteration throughput, reported as elements or bytes per second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }

    /// Identify a benchmark by parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Units of work performed per iteration, used to derive a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements (e.g. rows).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, first warming up once, then sampling it `sample_size` times (early
    /// exit once the per-benchmark time budget is exhausted).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<48} (no samples taken)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    print!(
        "{label:<48} min {:>12} | median {:>12} | mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
    if let Some(tp) = throughput {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => print!(" | {:.0} elem/s", per_sec(n)),
            Throughput::Bytes(n) => print!(" | {:.0} B/s", per_sec(n)),
        }
    }
    println!();
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // warmup + up to 3 samples for the first benchmark
        assert!((2..=4).contains(&calls), "unexpected call count {calls}");
    }

    #[test]
    fn benchmark_id_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("alpha").to_string(), "alpha");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(4)), "4.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }

    #[test]
    fn macros_compile_into_runnable_groups() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, bench_a);
        benches();
    }
}
